//! Algorithm 1 — precision-scaling robustness search.
//!
//! The search explores the grid of threshold voltages, time steps and
//! precision scales; for each candidate it trains/obtains an accurate SNN
//! (line 3, via a caller-supplied trainer so both surrogate-gradient
//! training and ANN→SNN conversion plug in), verifies the quality
//! constraint `Q` (line 4), crafts adversarial examples on the accurate
//! model (line 5), precision-scales and approximates the network with the
//! Eq. (1) `a_th` (lines 8–11) — installing the matching reduced-precision
//! weight plane ([`axsnn_core::plan::WeightPlane`]) so each candidate
//! *executes* through the quantized kernels rather than merely emulating
//! the precision in f32 — and measures the robustness
//! `R(ε) = (1 − adv/|Dts|)·100` (line 21). The first configuration with
//! `R ≥ Q` is returned (lines 22–24), along with the full evaluation
//! trace for Table I-style reporting.
//!
//! # Sweep-scale amortization
//!
//! Two observations collapse the per-cell cost of the grid. First, the
//! adversarial examples depend only on `(attack, ε, adversary, Dts)` —
//! none of the swept knobs — so the search crafts them **once** and
//! every cell reuses them. Second, a cell's encoded inputs depend only
//! on `(encoding, T)`, so the clean and adversarial test sets live in
//! [`EncodedCache`]s keyed by `(encoding, T)`: all cells sharing a `T`
//! classify the same cached, sharded frame trains through the fused
//! batch engine ([`axsnn_core::fused`]). [`SearchOutcome::encode_passes`]
//! records how many full-dataset encode passes actually happened.

use crate::journal::{GridFingerprint, GridSweep, SweepOptions, SweepReport};
use crate::metrics::RobustnessOutcome;
use crate::{DefenseError, Result};
use axsnn_attacks::gradient::{
    AnnGradientSource, AttackBudget, Bim, GradientSource, ImageAttack, Pgd,
};
use axsnn_core::ann::AnnNetwork;
use axsnn_core::approx::apply_eq1_approximation;
use axsnn_core::batch::sample_seed;
use axsnn_core::encoding::Encoder;
use axsnn_core::json::Json;
use axsnn_core::network::{SnnConfig, SpikingNetwork};
use axsnn_core::precision::{apply_precision, PrecisionScale};
use axsnn_datasets::cache::EncodedCache;
use axsnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Gradient attack selection for the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StaticAttackKind {
    /// Projected gradient descent.
    Pgd,
    /// Basic iterative method.
    Bim,
}

impl StaticAttackKind {
    /// Attack name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            StaticAttackKind::Pgd => "PGD",
            StaticAttackKind::Bim => "BIM",
        }
    }
}

/// The (V_th, T, precision, a_th-scale) grid Algorithm 1 sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Threshold voltages to test (paper: 0.25..=2.25 step 0.25).
    pub thresholds: Vec<f32>,
    /// Time steps to test (paper: 32..=80 step 8).
    pub time_steps: Vec<usize>,
    /// Precision scales (paper: FP32, FP16, INT8).
    pub precision_scales: Vec<PrecisionScale>,
    /// Multipliers applied to the Eq. (1) `a_th` (candidate approximation
    /// strengths).
    pub approx_scales: Vec<f32>,
}

impl SearchSpace {
    /// The paper's full grid.
    pub fn paper_grid() -> Self {
        SearchSpace {
            thresholds: (1..=9).map(|i| i as f32 * 0.25).collect(),
            time_steps: (0..=6).map(|i| 32 + i * 8).collect(),
            precision_scales: PrecisionScale::ALL.to_vec(),
            approx_scales: vec![0.5, 1.0, 1.5],
        }
    }

    fn validate(&self) -> Result<()> {
        if self.thresholds.is_empty()
            || self.time_steps.is_empty()
            || self.precision_scales.is_empty()
            || self.approx_scales.is_empty()
        {
            return Err(DefenseError::InvalidSearchSpace {
                message: "all search dimensions must be non-empty".into(),
            });
        }
        Ok(())
    }
}

/// Configuration of the search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrecisionSearchConfig {
    /// The grid to sweep.
    pub space: SearchSpace,
    /// Quality constraint `Q` in percent: minimum clean accuracy for a
    /// trained model *and* minimum robustness for acceptance.
    pub quality_constraint: f32,
    /// Perturbation budget ε of the attack.
    pub epsilon: f32,
    /// Which gradient attack the adversary uses.
    pub attack: StaticAttackKind,
    /// Stop at the first satisfying configuration (the paper's behaviour)
    /// or sweep everything for a full trace.
    pub stop_at_first: bool,
    /// Worker threads for encoding and fused batch classification
    /// (`0` = all available cores).
    pub threads: usize,
}

/// One evaluated configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchRecord {
    /// Threshold voltage.
    pub threshold: f32,
    /// Time steps.
    pub time_steps: usize,
    /// Precision scale.
    pub precision: PrecisionScale,
    /// `a_th` scale multiplier used.
    pub approx_scale: f32,
    /// Effective mean approximation level produced by Eq. (1)
    /// (fraction of weights pruned, a proxy for the paper's `a_th`).
    pub pruned_fraction: f32,
    /// Robustness / adversarial accuracy outcome.
    pub outcome: RobustnessOutcome,
}

/// Result of a full search run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// First (or best, when not stopping early) satisfying record.
    pub best: Option<SearchRecord>,
    /// Every evaluated configuration in sweep order.
    pub trace: Vec<SearchRecord>,
    /// Configurations whose clean accuracy failed the quality constraint
    /// (line 4) and were skipped, as `(threshold, time_steps)` pairs.
    pub skipped: Vec<(f32, usize)>,
    /// Full-dataset encode passes performed (clean + adversarial): one
    /// per distinct `(encoding, T)` actually visited, however many grid
    /// cells shared it. A grid with a single `T` costs exactly 2 —
    /// clean once, adversarial once.
    pub encode_passes: usize,
}

/// Runs Algorithm 1.
///
/// * `trainer` produces an accurate SNN for a given configuration
///   (line 3) — pass a closure doing surrogate-gradient training or
///   ANN→SNN conversion.
/// * `adversary` is the accurate classifier the attacker crafts on
///   (threat model, Sec. III).
/// * `test` is `Dts`.
///
/// # Errors
///
/// Returns [`DefenseError::InvalidSearchSpace`] / [`DefenseError::InvalidData`]
/// for malformed inputs and propagates training/attack failures.
pub fn precision_scaling_search<F, R>(
    config: &PrecisionSearchConfig,
    trainer: &mut F,
    adversary: &AnnNetwork,
    test: &[(Tensor, usize)],
    rng: &mut R,
) -> Result<SearchOutcome>
where
    F: FnMut(SnnConfig) -> axsnn_core::Result<SpikingNetwork>,
    R: Rng,
{
    let (outcome, report) = precision_scaling_search_resumable(
        config,
        trainer,
        adversary,
        test,
        rng,
        &SweepOptions::new(),
    )?;
    // Without a journal there is no later run to fill a hole, so a
    // permanently failed cell is fatal here.
    if let Some(failure) = report.failures.first() {
        return Err(DefenseError::SweepFailed {
            cell: failure.cell,
            message: failure.message.clone(),
        });
    }
    Ok(outcome)
}

/// [`precision_scaling_search`] on the crash-safe sweep engine
/// ([`crate::journal`]): with [`SweepOptions::journal`] set, every
/// completed `(V_th, T)` macro cell is checkpointed the moment it
/// finishes and a re-invocation replays committed cells instead of
/// re-running them. Per-cell determinism (the Eq. (1) statistics RNG is
/// seeded from [`sample_seed`] of the cell index) makes the assembled
/// [`SearchOutcome`] identical whether the grid ran uninterrupted or
/// was killed and resumed at any cell boundary — except
/// [`SearchOutcome::encode_passes`], which counts the encode work each
/// *process* actually performed.
///
/// The resume contract requires the *caller's* inputs to be
/// reproducible too: the same `rng` seed (it feeds the adversarial
/// crafting and the grid fingerprint) and a deterministic, stateless
/// `trainer` (ANN→SNN conversion qualifies; a stateful trainer would
/// diverge across cells that re-run).
///
/// Unlike the plain entry point, permanent cell failures are reported
/// in the returned [`SweepReport`] instead of failing the whole search
/// — their records are simply absent from the trace, and a later
/// resume retries them.
///
/// # Errors
///
/// Returns [`DefenseError::InvalidSearchSpace`] /
/// [`DefenseError::InvalidData`] for malformed inputs,
/// [`DefenseError::Journal`] for journal validation/write failures, and
/// [`DefenseError::Interrupted`] when a [`crate::journal::FaultPlan`]
/// kill switch fires.
pub fn precision_scaling_search_resumable<F, R>(
    config: &PrecisionSearchConfig,
    trainer: &mut F,
    adversary: &AnnNetwork,
    test: &[(Tensor, usize)],
    rng: &mut R,
    opts: &SweepOptions,
) -> Result<(SearchOutcome, SweepReport)>
where
    F: FnMut(SnnConfig) -> axsnn_core::Result<SpikingNetwork>,
    R: Rng,
{
    config.space.validate()?;
    if test.is_empty() {
        return Err(DefenseError::InvalidData {
            message: "test set must be non-empty".into(),
        });
    }
    let budget = AttackBudget::for_epsilon(config.epsilon);

    // Lines 5/15: craft the adversarial test set *once* — it depends
    // only on the attacker's surrogate and ε, never on the swept knobs.
    let adv_data: Vec<(Tensor, usize)> = {
        let mut source = AnnGradientSource::new(adversary);
        match config.attack {
            StaticAttackKind::Pgd => craft_all(&Pgd::new(budget), &mut source, test, rng)?,
            StaticAttackKind::Bim => craft_all(&Bim::new(budget), &mut source, test, rng)?,
        }
    };
    // Encoded-frame caches shared by every grid cell with the same T.
    let cache_seed = rng.gen::<u64>();
    // All remaining randomness is re-derived per cell from this seed so
    // a cell's payload depends only on its index — the determinism
    // contract the journal's bit-identical resume rests on.
    let grid_seed = rng.gen::<u64>();
    let clean_cache = EncodedCache::new(test, cache_seed, config.threads);
    let adv_cache = EncodedCache::new(&adv_data, cache_seed ^ 0xadf0_0d5e, config.threads);

    let thresholds = &config.space.thresholds;
    let steps = &config.space.time_steps;
    let n_t = steps.len();
    let sweep = GridSweep::new(
        thresholds.len() * n_t,
        search_fingerprint(config, cache_seed, grid_seed, test.len()),
    );

    // One macro cell per (V_th, T) pair, threshold-major — the unit of
    // checkpointing, holding every inner (precision, a_th) record.
    let eval = |cell: usize| -> Result<Json> {
        let threshold = thresholds[cell / n_t];
        let time_steps = steps[cell % n_t];
        let snn_cfg = SnnConfig {
            threshold,
            time_steps,
            leak: 0.9,
        };
        let mut cell_rng = StdRng::seed_from_u64(sample_seed(grid_seed, cell));
        // Line 3: obtain the accurate model.
        let accurate = trainer(snn_cfg).map_err(DefenseError::from)?;
        let clean_set = clean_cache
            .get(Encoder::DirectCurrent, time_steps)
            .map_err(DefenseError::from)?;
        let adv_set = adv_cache
            .get(Encoder::DirectCurrent, time_steps)
            .map_err(DefenseError::from)?;
        // Line 4: quality gate on clean accuracy.
        let clean = clean_set
            .accuracy(&accurate, config.threads)
            .map_err(DefenseError::from)?;
        if clean < config.quality_constraint {
            return Ok(Json::Obj(vec![("skipped".into(), Json::Bool(true))]));
        }
        // Collect spike statistics once per accurate model for Eq. (1).
        let stats = {
            let mut stat_net = accurate.clone();
            let frames = Encoder::DirectCurrent
                .encode(&test[0].0, time_steps, &mut cell_rng)
                .map_err(DefenseError::from)?;
            stat_net
                .forward(&frames, false, &mut cell_rng)
                .map_err(DefenseError::from)?
                .stats
        };
        let mut records = Vec::new();
        let mut stopped = false;
        'cell: for &precision in &config.space.precision_scales {
            for &approx_scale in &config.space.approx_scales {
                // Lines 8–11: precision-scale then approximate, then
                // install the matching weight-storage plane so the
                // candidate *executes* through the reduced-precision
                // kernels (the plane re-quantizes after Eq. (1) pruning,
                // which can remove the pre-pruning extreme weight).
                let mut candidate = accurate.clone();
                apply_precision(&mut candidate, precision).map_err(DefenseError::from)?;
                let report = apply_eq1_approximation(&mut candidate, &stats, approx_scale)
                    .map_err(DefenseError::from)?;
                candidate
                    .set_weight_plane(precision.weight_plane())
                    .map_err(DefenseError::from)?;
                // Lines 15–21: classify the cached clean and
                // adversarial sets through the fused batch engine.
                let clean_acc = clean_set
                    .accuracy(&candidate, config.threads)
                    .map_err(DefenseError::from)?;
                let adv_acc = adv_set
                    .accuracy(&candidate, config.threads)
                    .map_err(DefenseError::from)?;
                records.push(Json::Obj(vec![
                    ("precision".into(), Json::Str(precision.to_string())),
                    ("approx_scale".into(), Json::Num(f64::from(approx_scale))),
                    (
                        "pruned_fraction".into(),
                        Json::Num(f64::from(report.pruned_fraction())),
                    ),
                    ("clean".into(), Json::Num(f64::from(clean_acc))),
                    ("adv".into(), Json::Num(f64::from(adv_acc))),
                ]));
                // Lines 22–24: under stop_at_first the sweep halts at
                // the first satisfying record; no earlier cell had one
                // (it would have halted there), so "satisfying" is the
                // whole condition.
                if config.stop_at_first && adv_acc >= config.quality_constraint {
                    stopped = true;
                    break 'cell;
                }
            }
        }
        Ok(Json::Obj(vec![
            ("skipped".into(), Json::Bool(false)),
            ("stopped".into(), Json::Bool(stopped)),
            ("records".into(), Json::Arr(records)),
        ]))
    };
    let stop = |_cell: usize, payload: &Json| -> bool {
        matches!(payload.get("stopped"), Some(Json::Bool(true)))
    };
    let (payloads, report) = sweep.run_serial(opts, eval, stop)?;

    let mut outcome = assemble_outcome(config, test.len(), &payloads)?;
    outcome.encode_passes = clean_cache.encode_passes() + adv_cache.encode_passes();
    Ok((outcome, report))
}

/// The search grid's identity for journal validation: every input that
/// shapes a cell payload. Worker-thread counts are deliberately absent
/// — results are thread-count invariant.
fn search_fingerprint(
    config: &PrecisionSearchConfig,
    cache_seed: u64,
    grid_seed: u64,
    samples: usize,
) -> GridFingerprint {
    GridFingerprint::of(&format!(
        "axsnn.search.v2|th={:?}|T={:?}|prec={:?}|ax={:?}|Q={:?}|eps={:?}|attack={}|stop={}|\
         cache_seed={cache_seed}|grid_seed={grid_seed}|samples={samples}",
        config.space.thresholds,
        config.space.time_steps,
        config.space.precision_scales,
        config.space.approx_scales,
        config.quality_constraint,
        config.epsilon,
        config.attack.name(),
        config.stop_at_first,
    ))
}

fn payload_num(payload: &Json, key: &str) -> Result<f32> {
    payload
        .get(key)
        .and_then(Json::as_f64)
        .map(|v| v as f32)
        .ok_or_else(|| DefenseError::InvalidData {
            message: format!("sweep payload missing numeric field {key:?}"),
        })
}

fn precision_from_name(name: &str) -> Result<PrecisionScale> {
    PrecisionScale::ALL
        .iter()
        .copied()
        .find(|p| p.to_string() == name)
        .ok_or_else(|| DefenseError::InvalidData {
            message: format!("sweep payload has unknown precision {name:?}"),
        })
}

/// Rebuilds the [`SearchOutcome`] from the per-cell payloads, in fixed
/// cell order — the step that makes resumed and uninterrupted runs
/// indistinguishable. The best/trace logic here mirrors the original
/// in-loop accumulation exactly.
fn assemble_outcome(
    config: &PrecisionSearchConfig,
    samples: usize,
    payloads: &[Option<Json>],
) -> Result<SearchOutcome> {
    let n_t = config.space.time_steps.len();
    let mut outcome = SearchOutcome::default();
    for (cell, payload) in payloads.iter().enumerate() {
        let Some(payload) = payload else { continue };
        let threshold = config.space.thresholds[cell / n_t];
        let time_steps = config.space.time_steps[cell % n_t];
        if matches!(payload.get("skipped"), Some(Json::Bool(true))) {
            outcome.skipped.push((threshold, time_steps));
            continue;
        }
        let records = payload
            .get("records")
            .and_then(Json::as_array)
            .ok_or_else(|| DefenseError::InvalidData {
                message: "sweep payload missing records array".into(),
            })?;
        for rec in records {
            let precision = precision_from_name(
                rec.get("precision")
                    .and_then(Json::as_str)
                    .unwrap_or_default(),
            )?;
            let adv = payload_num(rec, "adv")?;
            let record = SearchRecord {
                threshold,
                time_steps,
                precision,
                approx_scale: payload_num(rec, "approx_scale")?,
                pruned_fraction: payload_num(rec, "pruned_fraction")?,
                outcome: RobustnessOutcome {
                    clean_accuracy: payload_num(rec, "clean")?,
                    adversarial_accuracy: adv,
                    robustness: adv,
                    samples,
                },
            };
            let satisfies = record.outcome.robustness >= config.quality_constraint;
            outcome.trace.push(record.clone());
            let better = match &outcome.best {
                None => satisfies,
                Some(b) => satisfies && record.outcome.robustness > b.outcome.robustness,
            };
            if better {
                outcome.best = Some(record);
            }
        }
    }
    Ok(outcome)
}

/// Crafts the adversarial counterpart of every test sample against the
/// adversary's surrogate.
fn craft_all<A: ImageAttack, R: Rng>(
    attack: &A,
    source: &mut dyn GradientSource,
    test: &[(Tensor, usize)],
    rng: &mut R,
) -> Result<Vec<(Tensor, usize)>> {
    test.iter()
        .map(|(image, label)| Ok((attack.perturb(source, image, *label, rng)?, *label)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use axsnn_core::ann::AnnLayer;
    use axsnn_core::convert::ann_to_snn;
    use axsnn_core::train::{train_ann, TrainConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_setup(rng: &mut StdRng) -> (AnnNetwork, Vec<(Tensor, usize)>) {
        let mut ann = AnnNetwork::new(vec![
            AnnLayer::linear_relu(rng, 4, 16),
            AnnLayer::linear_out(rng, 16, 2),
        ])
        .unwrap();
        let data: Vec<(Tensor, usize)> = (0..32)
            .map(|i| {
                let c = i % 2;
                let base = if c == 0 { 0.15 } else { 0.85 };
                let x = Tensor::from_vec(
                    (0..4)
                        .map(|_| (base + rng.gen_range(-0.05..0.05f32)).clamp(0.0, 1.0))
                        .collect(),
                    &[4],
                )
                .unwrap();
                (x, c)
            })
            .collect();
        train_ann(
            &mut ann,
            &data,
            &TrainConfig {
                epochs: 25,
                learning_rate: 0.3,
                momentum: 0.0,
                batch_size: 8,
                encoder: Encoder::DirectCurrent,
                ..TrainConfig::default()
            },
            rng,
        )
        .unwrap();
        (ann, data)
    }

    #[test]
    fn search_space_validation() {
        let mut s = SearchSpace::paper_grid();
        assert!(s.validate().is_ok());
        s.thresholds.clear();
        assert!(s.validate().is_err());
    }

    #[test]
    fn paper_grid_dimensions() {
        let s = SearchSpace::paper_grid();
        assert_eq!(s.thresholds.len(), 9);
        assert_eq!(s.time_steps, vec![32, 40, 48, 56, 64, 72, 80]);
        assert_eq!(s.precision_scales.len(), 3);
    }

    #[test]
    fn search_finds_configuration_on_toy_problem() {
        let mut rng = StdRng::seed_from_u64(21);
        let (ann, data) = toy_setup(&mut rng);
        let calib: Vec<Tensor> = data.iter().take(8).map(|(x, _)| x.clone()).collect();
        let test: Vec<(Tensor, usize)> = data.iter().take(12).cloned().collect();
        let config = PrecisionSearchConfig {
            space: SearchSpace {
                thresholds: vec![1.0],
                time_steps: vec![24],
                precision_scales: vec![PrecisionScale::Fp32, PrecisionScale::Int8],
                approx_scales: vec![0.5, 1.0],
            },
            quality_constraint: 60.0,
            epsilon: 0.05,
            attack: StaticAttackKind::Pgd,
            stop_at_first: false,
            threads: 2,
        };
        let ann_for_trainer = ann.clone();
        let mut trainer = move |cfg: SnnConfig| ann_to_snn(&ann_for_trainer, cfg, &calib);
        let out = precision_scaling_search(&config, &mut trainer, &ann, &test, &mut rng).unwrap();
        assert_eq!(out.trace.len(), 4, "2 precisions × 2 approx scales");
        assert!(
            out.best.is_some(),
            "an easy blob task with tiny ε must satisfy Q=60: {:?}",
            out.trace
        );
        // The sweep's four grid cells share (T, encoding): the clean and
        // adversarial datasets each encode exactly once.
        assert_eq!(
            out.encode_passes, 2,
            "4-cell grid must encode clean + adversarial exactly once each"
        );
    }

    #[test]
    fn quality_gate_skips_bad_models() {
        let mut rng = StdRng::seed_from_u64(22);
        let (ann, data) = toy_setup(&mut rng);
        let test: Vec<(Tensor, usize)> = data.iter().take(8).cloned().collect();
        let config = PrecisionSearchConfig {
            space: SearchSpace {
                thresholds: vec![50.0], // absurd threshold → silent network
                time_steps: vec![8],
                precision_scales: vec![PrecisionScale::Fp32],
                approx_scales: vec![1.0],
            },
            quality_constraint: 60.0,
            epsilon: 0.1,
            attack: StaticAttackKind::Bim,
            stop_at_first: true,
            threads: 1,
        };
        let calib: Vec<Tensor> = data.iter().take(4).map(|(x, _)| x.clone()).collect();
        let ann2 = ann.clone();
        let mut trainer = move |cfg: SnnConfig| ann_to_snn(&ann2, cfg, &calib);
        let out = precision_scaling_search(&config, &mut trainer, &ann, &test, &mut rng).unwrap();
        assert_eq!(out.skipped, vec![(50.0, 8)]);
        assert!(out.trace.is_empty());
        assert!(out.best.is_none());
    }

    #[test]
    fn empty_test_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let (ann, _) = toy_setup(&mut rng);
        let config = PrecisionSearchConfig {
            space: SearchSpace::paper_grid(),
            quality_constraint: 50.0,
            epsilon: 0.1,
            attack: StaticAttackKind::Pgd,
            stop_at_first: true,
            threads: 1,
        };
        let mut trainer =
            |_cfg: SnnConfig| -> axsnn_core::Result<SpikingNetwork> { unreachable!() };
        let r = precision_scaling_search(&config, &mut trainer, &ann, &[], &mut rng);
        assert!(r.is_err());
    }
}
