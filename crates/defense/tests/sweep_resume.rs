//! Crash-resume equivalence suite for the journaled sweep engine.
//!
//! The acceptance bar: kill the sweep at *every* cell boundary, resume
//! from the journal, and the merged result must be bit-identical to an
//! uninterrupted run — and a truncated or corrupted journal record must
//! be detected, reported with its byte offset, and re-run rather than
//! crashing the grid. The generic-engine tests sweep every kill point
//! exhaustively; the Algorithm 1 tests pin the same property on the
//! real `precision_scaling_search_resumable` (whose `encode_passes`
//! counter is process-local work accounting, so it is normalized to 0
//! before comparison).

use axsnn_core::ann::{AnnLayer, AnnNetwork};
use axsnn_core::encoding::Encoder;
use axsnn_core::json::Json;
use axsnn_core::network::SnnConfig;
use axsnn_core::precision::PrecisionScale;
use axsnn_core::train::{train_ann, TrainConfig};
use axsnn_defense::journal::{
    corrupt_byte, truncate_tail, FaultPlan, GridFingerprint, GridSweep, SweepOptions,
};
use axsnn_defense::search::{
    precision_scaling_search_resumable, PrecisionSearchConfig, SearchOutcome, SearchSpace,
    StaticAttackKind,
};
use axsnn_defense::DefenseError;
use axsnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("axsnn_resume_{}_{name}", std::process::id()))
}

fn payload_for(cell: usize) -> Json {
    Json::Obj(vec![
        ("cell".into(), Json::Num(cell as f64)),
        ("value".into(), Json::Num((cell as f64) * 1.25 + 0.5)),
    ])
}

/// Kill the generic engine after every possible number of commits;
/// every resume must reproduce the uninterrupted payload vector
/// bit-for-bit and execute only the lost cells.
#[test]
fn kill_at_every_cell_boundary_resumes_bit_identically() {
    const CELLS: usize = 9;
    let sweep = GridSweep::new(CELLS, GridFingerprint::of("boundary"));
    let baseline = sweep
        .run_serial(&SweepOptions::new(), |c| Ok(payload_for(c)), |_, _| false)
        .unwrap()
        .0;
    for kill_at in 1..CELLS {
        let path = tmp(&format!("boundary_{kill_at}.jsonl"));
        let _ = std::fs::remove_file(&path);
        let opts = SweepOptions {
            fault: FaultPlan::kill_after(kill_at),
            ..SweepOptions::journaled(&path)
        };
        let err = sweep
            .run_serial(&opts, |c| Ok(payload_for(c)), |_, _| false)
            .unwrap_err();
        assert!(
            matches!(err, DefenseError::Interrupted { completed } if completed == kill_at),
            "kill_at {kill_at}: {err}"
        );
        let (resumed, report) = sweep
            .run_serial(
                &SweepOptions::journaled(&path),
                |c| Ok(payload_for(c)),
                |_, _| false,
            )
            .unwrap();
        assert_eq!(resumed, baseline, "kill_at {kill_at}: resume must match");
        assert_eq!(report.replayed, kill_at);
        assert_eq!(report.executed, CELLS - kill_at, "only lost cells re-run");
        let _ = std::fs::remove_file(&path);
    }
}

/// A record whose tail was torn off mid-append is dropped (reported
/// with its offset), its cell re-queued, and the resumed grid matches.
#[test]
fn truncated_tail_record_is_requeued_and_result_matches() {
    const CELLS: usize = 5;
    let sweep = GridSweep::new(CELLS, GridFingerprint::of("torn"));
    let path = tmp("torn.jsonl");
    let _ = std::fs::remove_file(&path);
    let baseline = sweep
        .run_serial(
            &SweepOptions::journaled(&path),
            |c| Ok(payload_for(c)),
            |_, _| false,
        )
        .unwrap()
        .0;
    truncate_tail(&path, 9).unwrap();
    let (resumed, report) = sweep
        .run_serial(
            &SweepOptions::journaled(&path),
            |c| Ok(payload_for(c)),
            |_, _| false,
        )
        .unwrap();
    assert_eq!(resumed, baseline);
    assert_eq!(report.executed, 1, "exactly the torn cell re-runs");
    assert_eq!(report.replayed, CELLS - 1);
    assert_eq!(report.damage.len(), 1);
    assert!(
        report.damage[0].message.contains("truncated"),
        "{:?}",
        report.damage
    );
    let _ = std::fs::remove_file(&path);
}

/// A bit-rotted mid-file record fails its checksum, is reported with
/// path and byte offset, and only its cell re-runs.
#[test]
fn corrupted_record_is_detected_reported_and_rerun() {
    const CELLS: usize = 6;
    let sweep = GridSweep::new(CELLS, GridFingerprint::of("rot"));
    let path = tmp("rot.jsonl");
    let _ = std::fs::remove_file(&path);
    let baseline = sweep
        .run_serial(
            &SweepOptions::journaled(&path),
            |c| Ok(payload_for(c)),
            |_, _| false,
        )
        .unwrap()
        .0;
    // Flip a byte inside the third record (header + cells 0,1 precede).
    let src = std::fs::read_to_string(&path).unwrap();
    let third_record = src.match_indices('\n').nth(2).unwrap().0 + 1;
    corrupt_byte(&path, third_record + 25).unwrap();
    let (resumed, report) = sweep
        .run_serial(
            &SweepOptions::journaled(&path),
            |c| Ok(payload_for(c)),
            |_, _| false,
        )
        .unwrap();
    assert_eq!(resumed, baseline);
    assert_eq!(report.executed, 1, "exactly the rotted cell re-runs");
    assert_eq!(report.damage.len(), 1);
    assert!(
        report.damage[0].offset >= third_record,
        "damage offset {} must point into the corrupted record (≥ {third_record})",
        report.damage[0].offset
    );
    let _ = std::fs::remove_file(&path);
}

fn toy_setup(rng: &mut StdRng) -> (AnnNetwork, Vec<(Tensor, usize)>) {
    let mut ann = AnnNetwork::new(vec![
        AnnLayer::linear_relu(rng, 4, 16),
        AnnLayer::linear_out(rng, 16, 2),
    ])
    .unwrap();
    let data: Vec<(Tensor, usize)> = (0..24)
        .map(|i| {
            let c = i % 2;
            let base = if c == 0 { 0.15 } else { 0.85 };
            let x = Tensor::from_vec(
                (0..4)
                    .map(|_| (base + rng.gen_range(-0.05..0.05f32)).clamp(0.0, 1.0))
                    .collect(),
                &[4],
            )
            .unwrap();
            (x, c)
        })
        .collect();
    train_ann(
        &mut ann,
        &data,
        &TrainConfig {
            epochs: 20,
            learning_rate: 0.3,
            momentum: 0.0,
            batch_size: 8,
            encoder: Encoder::DirectCurrent,
            ..TrainConfig::default()
        },
        rng,
    )
    .unwrap();
    (ann, data)
}

fn search_config(stop_at_first: bool) -> PrecisionSearchConfig {
    PrecisionSearchConfig {
        space: SearchSpace {
            thresholds: vec![0.5, 1.0, 1.5],
            time_steps: vec![12, 20],
            precision_scales: vec![PrecisionScale::Fp32, PrecisionScale::Int8],
            approx_scales: vec![0.5, 1.0],
        },
        quality_constraint: 55.0,
        epsilon: 0.05,
        attack: StaticAttackKind::Pgd,
        stop_at_first,
        threads: 1,
    }
}

/// Runs the real search with a fresh, identically-seeded RNG + trainer
/// each time — the caller-side half of the resume contract.
fn run_search(
    config: &PrecisionSearchConfig,
    opts: &SweepOptions,
) -> axsnn_defense::Result<(SearchOutcome, axsnn_defense::journal::SweepReport)> {
    let mut rng = StdRng::seed_from_u64(77);
    let (ann, data) = toy_setup(&mut rng);
    let calib: Vec<Tensor> = data.iter().take(8).map(|(x, _)| x.clone()).collect();
    let test: Vec<(Tensor, usize)> = data.iter().take(10).cloned().collect();
    let ann_for_trainer = ann.clone();
    let mut trainer =
        move |cfg: SnnConfig| axsnn_core::convert::ann_to_snn(&ann_for_trainer, cfg, &calib);
    precision_scaling_search_resumable(config, &mut trainer, &ann, &test, &mut rng, opts)
}

/// `encode_passes` counts the encode work *this process* performed, so
/// it legitimately differs between a cold run and a resume; the
/// equivalence claim covers everything else.
fn normalized(mut outcome: SearchOutcome) -> SearchOutcome {
    outcome.encode_passes = 0;
    outcome
}

/// Kill the real Algorithm 1 search at several cell boundaries and
/// resume: the assembled `SearchOutcome` must be bit-identical to the
/// uninterrupted run's.
#[test]
fn search_kill_resume_outcome_is_bit_identical() {
    let config = search_config(false);
    let baseline = normalized(run_search(&config, &SweepOptions::new()).unwrap().0);
    assert_eq!(baseline.trace.len(), 24, "6 macro cells × 4 records");
    for kill_at in [1, 3, 5] {
        let path = tmp(&format!("search_{kill_at}.jsonl"));
        let _ = std::fs::remove_file(&path);
        let opts = SweepOptions {
            fault: FaultPlan::kill_after(kill_at),
            ..SweepOptions::journaled(&path)
        };
        let err = run_search(&config, &opts).unwrap_err();
        assert!(matches!(err, DefenseError::Interrupted { .. }), "{err}");
        let (resumed, report) = run_search(&config, &SweepOptions::journaled(&path)).unwrap();
        assert_eq!(report.replayed, kill_at);
        assert_eq!(
            normalized(resumed),
            baseline,
            "kill_at {kill_at}: resumed search outcome must be bit-identical"
        );
        let _ = std::fs::remove_file(&path);
    }
}

/// The same property under `stop_at_first`: the replayed stop cell
/// halts the resumed sweep at the same boundary, and cells past the
/// stop stay unevaluated.
#[test]
fn search_stop_at_first_survives_kill_and_resume() {
    let config = search_config(true);
    let baseline = normalized(run_search(&config, &SweepOptions::new()).unwrap().0);
    assert!(baseline.best.is_some(), "toy task must satisfy Q");
    let path = tmp("search_stop.jsonl");
    let _ = std::fs::remove_file(&path);
    let opts = SweepOptions {
        fault: FaultPlan::kill_after(1),
        ..SweepOptions::journaled(&path)
    };
    let err = run_search(&config, &opts).unwrap_err();
    assert!(matches!(err, DefenseError::Interrupted { .. }), "{err}");
    let (resumed, _) = run_search(&config, &SweepOptions::journaled(&path)).unwrap();
    assert_eq!(normalized(resumed), baseline);
    let _ = std::fs::remove_file(&path);
}

/// A journal whose tail record was torn off by a crash mid-append still
/// resumes the real search to the uninterrupted outcome.
#[test]
fn search_truncated_journal_recovers() {
    let config = search_config(false);
    let baseline = normalized(run_search(&config, &SweepOptions::new()).unwrap().0);
    let path = tmp("search_torn.jsonl");
    let _ = std::fs::remove_file(&path);
    run_search(&config, &SweepOptions::journaled(&path)).unwrap();
    truncate_tail(&path, 13).unwrap();
    let (resumed, report) = run_search(&config, &SweepOptions::journaled(&path)).unwrap();
    assert_eq!(report.executed, 1, "only the torn cell re-runs");
    assert_eq!(report.damage.len(), 1);
    assert_eq!(normalized(resumed), baseline);
    let _ = std::fs::remove_file(&path);
}

/// Two shards, two journals, one merge: the merged journal resumes the
/// full search with zero execution and a bit-identical outcome.
#[test]
fn search_shards_merge_and_resume_with_zero_execution() {
    let config = search_config(false);
    let baseline = normalized(run_search(&config, &SweepOptions::new()).unwrap().0);
    let (a, b, merged) = (
        tmp("search_sh_a.jsonl"),
        tmp("search_sh_b.jsonl"),
        tmp("search_sh_m.jsonl"),
    );
    for p in [&a, &b, &merged] {
        let _ = std::fs::remove_file(p);
    }
    for (index, path) in [(0usize, &a), (1, &b)] {
        let opts = SweepOptions {
            journal: Some(path.clone()),
            shard: Some((index, 2)),
            ..SweepOptions::new()
        };
        run_search(&config, &opts).unwrap();
    }
    // An offline merge tool only has the files: recover the grid
    // identity from a shard's header and check the shards agree.
    let fingerprint = fingerprint_of(&a);
    assert_eq!(fingerprint, fingerprint_of(&b), "shards share one grid");
    axsnn_defense::journal::merge_journals(&[a.clone(), b.clone()], &merged, fingerprint, 6)
        .unwrap();
    let (resumed, report) = run_search(&config, &SweepOptions::journaled(&merged)).unwrap();
    assert_eq!(report.executed, 0, "merged journal covers the whole grid");
    assert_eq!(report.replayed, 6);
    assert_eq!(normalized(resumed), baseline);
    for p in [&a, &b, &merged] {
        let _ = std::fs::remove_file(p);
    }
}

/// Reads the fingerprint a journal file was written with from its
/// header — how an offline merge tool, which only has the files,
/// recovers the grid identity.
fn fingerprint_of(path: &std::path::Path) -> GridFingerprint {
    let src = std::fs::read_to_string(path).unwrap();
    let header = axsnn_core::json::parse(src.lines().next().unwrap()).unwrap();
    let hex = header.get("fingerprint").and_then(Json::as_str).unwrap();
    GridFingerprint::from_hex(hex).unwrap()
}

/// A stateful (panicking-then-healthy) cell is retried and the grid
/// never aborts; past the retry budget it is a recorded failure and the
/// remaining cells still complete.
#[test]
fn panics_are_isolated_retried_and_bounded() {
    const CELLS: usize = 8;
    let sweep = GridSweep::new(CELLS, GridFingerprint::of("panics"));
    let opts = SweepOptions {
        fault: FaultPlan::panic_in_cell(5, 2),
        retry_backoff_ms: 0,
        ..SweepOptions::new()
    };
    let (payloads, report) = sweep
        .run_serial(&opts, |c| Ok(payload_for(c)), |_, _| false)
        .unwrap();
    assert!(report.failures.is_empty());
    assert_eq!(report.retried, 2);
    assert!(payloads.iter().all(Option::is_some));

    let opts = SweepOptions {
        fault: FaultPlan::panic_in_cell(5, 99),
        max_retries: 1,
        retry_backoff_ms: 0,
        ..SweepOptions::new()
    };
    let (payloads, report) = sweep
        .run_serial(&opts, |c| Ok(payload_for(c)), |_, _| false)
        .unwrap();
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].cell, 5);
    assert_eq!(report.failures[0].attempts, 2, "1 try + 1 retry");
    assert!(payloads[5].is_none());
    assert_eq!(
        payloads.iter().filter(|p| p.is_some()).count(),
        CELLS - 1,
        "a permanently failing cell never aborts the grid"
    );
}
