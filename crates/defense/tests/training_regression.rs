//! Defense-side training regression: the minibatched trainers must not
//! cost any robustness relative to the dense-tape / per-sample
//! baselines they replaced.

use axsnn_attacks::gradient::{AnnGradientSource, AttackBudget, Pgd};
use axsnn_core::ann::{AnnLayer, AnnNetwork};
use axsnn_core::encoding::Encoder;
use axsnn_core::layer::Layer;
use axsnn_core::network::{SnnConfig, SpikingNetwork};
use axsnn_core::train::{train_ann, train_snn, TrainConfig};
use axsnn_defense::adv_train::{adversarial_train_ann, AdvTrainConfig};
use axsnn_defense::metrics::evaluate_image_attack;
use axsnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn blobs(rng: &mut StdRng, n: usize) -> Vec<(Tensor, usize)> {
    (0..n)
        .map(|i| {
            let c = i % 2;
            let base = if c == 0 { 0.2 } else { 0.8 };
            let x = Tensor::from_vec(
                (0..6)
                    .map(|_| (base + rng.gen_range(-0.08..0.08f32)).clamp(0.0, 1.0))
                    .collect(),
                &[6],
            )
            .unwrap();
            (x, c)
        })
        .collect()
}

/// Hardened (sparse-tape-trained) SNN accuracy under a PGD attack must
/// be no worse than the dense-tape baseline's. The two tapes accumulate
/// identically, so the trained networks — and their robustness — are
/// asserted exactly equal.
#[test]
fn sparse_tape_hardened_accuracy_no_worse_than_dense_tape_baseline() {
    let mut rng = StdRng::seed_from_u64(31);
    let data = blobs(&mut rng, 40);

    // Adversary surrogate: a quickly-trained ANN twin.
    let mut adversary = AnnNetwork::new(vec![
        AnnLayer::linear_relu(&mut rng, 6, 16),
        AnnLayer::linear_out(&mut rng, 16, 2),
    ])
    .unwrap();
    train_ann(
        &mut adversary,
        &data,
        &TrainConfig {
            epochs: 20,
            learning_rate: 0.25,
            momentum: 0.0,
            batch_size: 8,
            encoder: Encoder::DirectCurrent,
            ..TrainConfig::default()
        },
        &mut rng,
    )
    .unwrap();

    let snn_cfg = SnnConfig {
        threshold: 0.6,
        time_steps: 10,
        leak: 0.9,
    };
    let mut seed_rng = StdRng::seed_from_u64(7);
    let net0 = SpikingNetwork::new(
        vec![
            Layer::spiking_linear(&mut seed_rng, 6, 20, &snn_cfg),
            Layer::spiking_linear(&mut seed_rng, 20, 12, &snn_cfg),
            Layer::output_linear(&mut seed_rng, 12, 2),
        ],
        snn_cfg,
    )
    .unwrap();
    let tcfg = TrainConfig {
        epochs: 12,
        learning_rate: 0.05,
        momentum: 0.9,
        batch_size: 8,
        encoder: Encoder::Deterministic,
        ..TrainConfig::default()
    };

    let mut sparse_net = net0.clone();
    sparse_net.set_sparse_threshold(1.0);
    let mut train_rng = StdRng::seed_from_u64(13);
    train_snn(&mut sparse_net, &data, &tcfg, &mut train_rng).unwrap();

    let mut dense_net = net0;
    dense_net.set_sparse_threshold(0.0);
    let mut train_rng = StdRng::seed_from_u64(13);
    train_snn(&mut dense_net, &data, &tcfg, &mut train_rng).unwrap();

    let pgd = Pgd::new(AttackBudget {
        epsilon: 0.08,
        step_size: 0.02,
        steps: 8,
    });
    let attack_of = |net: &mut SpikingNetwork| {
        let mut source = AnnGradientSource::new(&adversary);
        let mut rng = StdRng::seed_from_u64(99);
        evaluate_image_attack(
            net,
            &mut source,
            &pgd,
            &data,
            Encoder::Deterministic,
            &mut rng,
        )
        .unwrap()
    };
    let sparse_out = attack_of(&mut sparse_net);
    let dense_out = attack_of(&mut dense_net);
    assert!(
        sparse_out.adversarial_accuracy >= dense_out.adversarial_accuracy,
        "sparse-tape training must not lose robustness: {} vs {}",
        sparse_out.adversarial_accuracy,
        dense_out.adversarial_accuracy
    );
    assert_eq!(
        sparse_out, dense_out,
        "identical tapes must produce identical robustness outcomes"
    );
}

/// The batched `adversarial_train_ann` update is bit-identical to the
/// per-sample gradient-accumulation loop it replaced (dropout-free
/// network, same seeds): loss trace and final parameters match exactly.
#[test]
fn batched_adversarial_training_matches_per_sample_reference() {
    let mut rng = StdRng::seed_from_u64(41);
    let data = blobs(&mut rng, 30);
    let mut init_rng = StdRng::seed_from_u64(3);
    let net0 = AnnNetwork::new(vec![
        AnnLayer::linear_relu(&mut init_rng, 6, 16),
        AnnLayer::linear_out(&mut init_rng, 16, 2),
    ])
    .unwrap();
    let cfg = AdvTrainConfig {
        train: TrainConfig {
            epochs: 5,
            learning_rate: 0.2,
            momentum: 0.0,
            batch_size: 8,
            encoder: Encoder::DirectCurrent,
            ..TrainConfig::default()
        },
        epsilon: 0.1,
        adversarial_fraction: 0.5,
    };

    // Batched trainer under test.
    let mut batched = net0.clone();
    let mut rng_a = StdRng::seed_from_u64(55);
    let batched_report = adversarial_train_ann(&mut batched, &data, &cfg, &mut rng_a).unwrap();

    // Per-sample reference: the pre-minibatching implementation.
    let mut reference = net0;
    let mut rng_b = StdRng::seed_from_u64(55);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut ref_losses = Vec::new();
    for _ in 0..cfg.train.epochs {
        use rand::seq::SliceRandom;
        order.shuffle(&mut rng_b);
        let mut loss_sum = 0.0f32;
        for chunk in order.chunks(cfg.train.batch_size) {
            let scale = 1.0 / chunk.len() as f32;
            let mut acc: Option<Vec<axsnn_core::ann::AnnLayerGrads>> = None;
            for &i in chunk {
                let (clean, label) = &data[i];
                let input = if rng_b.gen::<f32>() < cfg.adversarial_fraction {
                    let grad = reference.input_gradient(clean, *label).unwrap();
                    clean
                        .add(&axsnn_tensor::ops::sign(&grad).scale(cfg.epsilon))
                        .unwrap()
                        .clamp(0.0, 1.0)
                } else {
                    clean.clone()
                };
                let (_, loss, back) = reference
                    .forward_backward(&input, *label, true, &mut rng_b)
                    .unwrap();
                loss_sum += loss;
                acc = Some(match acc {
                    None => back.layer_grads,
                    Some(mut grads) => {
                        for (a, b) in grads.iter_mut().zip(&back.layer_grads) {
                            if let (Some(aw), Some(bw)) = (&mut a.weight, &b.weight) {
                                *aw = aw.add(bw).unwrap();
                            }
                            if let (Some(ab), Some(bb)) = (&mut a.bias, &b.bias) {
                                *ab = ab.add(bb).unwrap();
                            }
                        }
                        grads
                    }
                });
            }
            reference
                .apply_grads(&acc.unwrap(), cfg.train.learning_rate * scale)
                .unwrap();
        }
        ref_losses.push(loss_sum / data.len() as f32);
    }

    for (epoch, report) in batched_report.epochs.iter().enumerate() {
        assert_eq!(
            report.mean_loss, ref_losses[epoch],
            "epoch {epoch} loss must match the per-sample reference"
        );
    }
    let mut compared = 0usize;
    for (lb, lr) in batched.layers().iter().zip(reference.layers()) {
        if let (
            AnnLayer::LinearRelu {
                weight: wb,
                bias: bb,
            }
            | AnnLayer::LinearOut {
                weight: wb,
                bias: bb,
            },
            AnnLayer::LinearRelu {
                weight: wr,
                bias: br,
            }
            | AnnLayer::LinearOut {
                weight: wr,
                bias: br,
            },
        ) = (lb, lr)
        {
            assert_eq!(wb, wr, "batched weights must equal the reference");
            assert_eq!(bb, br, "batched biases must equal the reference");
            compared += 1;
        }
    }
    assert_eq!(compared, 2, "both parameterized layers compared");
}
