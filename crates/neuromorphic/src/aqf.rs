//! Approximate quantization-aware filtering (AQF) — Algorithm 2.
//!
//! Genuine DVS events are spatio-temporally correlated: a moving edge
//! produces clusters of events that are close in both space and time.
//! Adversarial perturbations (Sparse/Frame attacks) inject events with
//! *low* correlation. AQF removes them in three steps, following the
//! paper's Algorithm 2:
//!
//! 1. **Quantize** each timestamp with step `q_t`
//!    (`t ← round(t/q_t)·q_t`) — the "approximate quantization" that
//!    both denoises and matches the precision-scaled inference pipeline,
//! 2. **Correlate**: a memory map `M[y][x]` stores the most recent
//!    *neighbour* timestamp within a `(2s+1)²` window (the event's own
//!    pixel is excluded) and an activity counter per pixel,
//! 3. **Filter**: an event is removed when no neighbour fired within the
//!    temporal window `T2` (temporally isolated) or its pixel's activity
//!    counter exceeded `T1` and was flagged (hot / saturated pixel, the
//!    Frame-attack signature).

use crate::event::EventStream;
use crate::{NeuroError, Result};
use serde::{Deserialize, Serialize};

/// AQF parameters (Algorithm 2's `qt, s, T1, T2`).
///
/// Timestamps are normalized to `[0, 1)`, so `temporal_threshold` is a
/// fraction of the sample window; the paper's `T2 = 50` (ms of a ~1.5 s
/// gesture window) corresponds to ≈ 0.05 here.
///
/// # Example
///
/// ```
/// use axsnn_neuromorphic::aqf::AqfConfig;
///
/// let cfg = AqfConfig::default();
/// assert_eq!(cfg.spatial_window, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AqfConfig {
    /// Quantization step `q_t` for timestamps (0.0 disables quantization;
    /// Table II uses 0.015 and 0.01).
    pub quantization_step: f32,
    /// Spatial neighbourhood radius `s` (the paper fixes `s = 2`).
    pub spatial_window: usize,
    /// Activity threshold `T1`: a pixel whose neighbourhood counter
    /// exceeds this within one quantization window is *saturated* for
    /// that window.
    pub activity_threshold: u32,
    /// Temporal correlation threshold `T2` (normalized time units).
    pub temporal_threshold: f32,
    /// Number of saturated windows after which a pixel is flagged hot for
    /// the rest of the sample (the sticky `M[i][j] = 1` of Algorithm 2).
    /// Persistence separates an attack that hammers the same pixels all
    /// sample long from a gesture that merely passes through.
    pub saturation_persistence: u32,
}

impl Default for AqfConfig {
    fn default() -> Self {
        AqfConfig {
            quantization_step: 0.015,
            spatial_window: 2,
            activity_threshold: 5,
            temporal_threshold: 0.05,
            saturation_persistence: 8,
        }
    }
}

impl AqfConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::InvalidParameter`] for a negative
    /// quantization step, zero spatial window, or non-positive temporal
    /// threshold.
    pub fn validate(&self) -> Result<()> {
        if self.quantization_step < 0.0 {
            return Err(NeuroError::InvalidParameter {
                message: format!(
                    "quantization_step must be ≥ 0, got {}",
                    self.quantization_step
                ),
            });
        }
        if self.spatial_window == 0 {
            return Err(NeuroError::InvalidParameter {
                message: "spatial_window must be ≥ 1".into(),
            });
        }
        if self.temporal_threshold <= 0.0 {
            return Err(NeuroError::InvalidParameter {
                message: format!(
                    "temporal_threshold must be > 0, got {}",
                    self.temporal_threshold
                ),
            });
        }
        Ok(())
    }
}

/// Statistics of one AQF pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AqfReport {
    /// Events in the input stream.
    pub input_events: usize,
    /// Events surviving the filter.
    pub kept_events: usize,
    /// Events removed as temporally uncorrelated.
    pub removed_uncorrelated: usize,
    /// Events removed at saturated (hot) pixels.
    pub removed_saturated: usize,
}

impl AqfReport {
    /// Fraction of events removed.
    pub fn removal_fraction(&self) -> f32 {
        if self.input_events == 0 {
            0.0
        } else {
            (self.input_events - self.kept_events) as f32 / self.input_events as f32
        }
    }
}

/// Applies AQF (Algorithm 2) and returns the filtered stream plus a
/// removal report.
///
/// # Errors
///
/// Returns [`NeuroError::InvalidParameter`] for invalid configuration.
///
/// # Example
///
/// ```
/// use axsnn_neuromorphic::aqf::{approximate_quantized_filter, AqfConfig};
/// use axsnn_neuromorphic::event::{DvsEvent, EventStream, Polarity};
///
/// # fn main() -> Result<(), axsnn_neuromorphic::NeuroError> {
/// // A tight burst of neighbouring events (signal) plus one isolated
/// // far-away event (noise).
/// let mut events = Vec::new();
/// for i in 0..6u16 {
///     events.push(DvsEvent::new(10 + (i % 3), 10 + (i / 3), Polarity::On, 0.10 + i as f32 * 0.001));
/// }
/// events.push(DvsEvent::new(30, 30, Polarity::On, 0.8)); // lone noise event
/// let stream = EventStream::from_events(64, 64, events)?;
/// let (filtered, report) = approximate_quantized_filter(&stream, &AqfConfig::default())?;
/// assert!(report.kept_events >= 5);
/// assert!(filtered.events().iter().all(|e| e.x < 20), "noise removed");
/// # Ok(())
/// # }
/// ```
pub fn approximate_quantized_filter(
    stream: &EventStream,
    cfg: &AqfConfig,
) -> Result<(EventStream, AqfReport)> {
    cfg.validate()?;
    let (w, h) = (stream.width(), stream.height());
    let s = cfg.spatial_window as isize;

    // Pass 1 — hot-pixel statistics (the sticky `M[i][j] = 1` flag of
    // Algorithm 2, lines 15-17). A pixel is saturated when its own event
    // count over the sample exceeds `max(T1·persistence, factor·median)`
    // of the non-empty pixels: a genuine gesture sweeps *through* pixels,
    // an attack hammers the same ones all sample long. The median is
    // robust against the attack inflating the mean.
    let mut own_count = vec![0u32; w * h];
    for e in stream {
        own_count[e.y as usize * w + e.x as usize] += 1;
    }
    // The cut is deliberately absolute (`T1 · persistence`), like the
    // paper's fixed `T1 = 5`, `T2 = 50`: any data-adaptive statistic over
    // the event stream can be poisoned by the very attack it is supposed
    // to catch (a Frame attack floods enough pixels to shift medians and
    // quantiles).
    let hot_cut = cfg.activity_threshold as f32 * cfg.saturation_persistence as f32;
    let saturated: Vec<bool> = own_count.iter().map(|&c| (c as f32) > hot_cut).collect();

    // Pass 2 — temporal correlation in time order (lines 5-14, 18-20).
    // M[y][x]: most recent neighbour timestamp; NEG means "never".
    const NEVER: f32 = -1.0e9;
    let mut memory = vec![NEVER; w * h];
    let mut ordered: Vec<_> = stream.events().to_vec();
    ordered.sort_by(|a, b| a.t.partial_cmp(&b.t).unwrap_or(std::cmp::Ordering::Equal));

    let mut kept = EventStream::new(w, h)?;
    let mut removed_uncorrelated = 0usize;
    let mut removed_saturated = 0usize;

    for e in &ordered {
        // Line 4: quantize the timestamp.
        let tq = if cfg.quantization_step > 0.0 {
            ((e.t / cfg.quantization_step).round() * cfg.quantization_step).clamp(0.0, 0.999_999)
        } else {
            e.t
        };
        let (ex, ey) = (e.x as isize, e.y as isize);

        // Decide on this event *before* it contributes to its own
        // neighbourhood (lines 18-20 test the pre-update memory).
        let own = ey as usize * w + ex as usize;
        let uncorrelated = tq - memory[own] > cfg.temporal_threshold;
        let hot = saturated[own];

        // Lines 5-9: stamp the neighbourhood memory. Hot pixels do not
        // get to validate their neighbours (an attack would otherwise
        // whitelist itself).
        if !hot {
            for dy in -s..=s {
                for dx in -s..=s {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let (nx, ny) = (ex + dx, ey + dy);
                    if nx < 0 || ny < 0 || nx >= w as isize || ny >= h as isize {
                        continue;
                    }
                    memory[ny as usize * w + nx as usize] = tq;
                }
            }
        }

        if hot {
            removed_saturated += 1;
            continue;
        }
        if uncorrelated {
            removed_uncorrelated += 1;
            continue;
        }
        let mut filtered_event = *e;
        filtered_event.t = tq;
        kept.push(filtered_event)?;
    }

    let report = AqfReport {
        input_events: stream.len(),
        kept_events: kept.len(),
        removed_uncorrelated,
        removed_saturated,
    };
    Ok((kept, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DvsEvent, Polarity};

    /// A dense moving cluster whose events mutually validate.
    fn signal_burst(x0: u16, y0: u16, t0: f32, n: usize) -> Vec<DvsEvent> {
        (0..n)
            .map(|i| {
                DvsEvent::new(
                    x0 + (i % 2) as u16,
                    y0 + ((i / 2) % 2) as u16,
                    Polarity::On,
                    t0 + i as f32 * 0.002,
                )
            })
            .collect()
    }

    #[test]
    fn config_validation() {
        assert!(AqfConfig::default().validate().is_ok());
        assert!(AqfConfig {
            quantization_step: -0.1,
            ..AqfConfig::default()
        }
        .validate()
        .is_err());
        assert!(AqfConfig {
            spatial_window: 0,
            ..AqfConfig::default()
        }
        .validate()
        .is_err());
        assert!(AqfConfig {
            temporal_threshold: 0.0,
            ..AqfConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn keeps_correlated_burst() {
        let stream = EventStream::from_events(32, 32, signal_burst(10, 10, 0.2, 10)).unwrap();
        let (kept, report) = approximate_quantized_filter(&stream, &AqfConfig::default()).unwrap();
        // The first event has no history and is dropped; the rest are
        // validated by their predecessors.
        assert!(kept.len() >= 8, "kept only {} of 10", kept.len());
        assert_eq!(report.input_events, 10);
    }

    #[test]
    fn removes_isolated_noise() {
        let mut events = signal_burst(10, 10, 0.2, 10);
        events.push(DvsEvent::new(30, 5, Polarity::Off, 0.7)); // isolated
        let stream = EventStream::from_events(32, 32, events).unwrap();
        let (kept, report) = approximate_quantized_filter(&stream, &AqfConfig::default()).unwrap();
        assert!(kept.events().iter().all(|e| e.x <= 12));
        assert!(report.removed_uncorrelated >= 1);
    }

    #[test]
    fn removes_hot_pixels() {
        // One pixel fires far beyond the T1·persistence cut (40 with the
        // defaults) across the whole sample — the hot-pixel signature of
        // a frame-style attack. Every one of its events must be dropped.
        let mut events = signal_burst(10, 10, 0.2, 8);
        for i in 0..60 {
            events.push(DvsEvent::new(
                5,
                5,
                Polarity::On,
                (i as f32 / 64.0).min(0.999),
            ));
        }
        let stream = EventStream::from_events(16, 16, events).unwrap();
        let (kept, report) = approximate_quantized_filter(&stream, &AqfConfig::default()).unwrap();
        assert!(
            report.removed_saturated >= 60,
            "saturation must trigger: {report:?}"
        );
        assert!(kept.events().iter().all(|e| !(e.x == 5 && e.y == 5)));
    }

    #[test]
    fn hot_pixel_does_not_validate_neighbours() {
        // Isolated events adjacent to a hot pixel must still be removed
        // as uncorrelated: the attacker cannot whitelist a region by
        // flooding it.
        let mut events = Vec::new();
        for i in 0..60 {
            events.push(DvsEvent::new(
                5,
                5,
                Polarity::On,
                (i as f32 / 64.0).min(0.999),
            ));
        }
        events.push(DvsEvent::new(6, 5, Polarity::Off, 0.5));
        let stream = EventStream::from_events(16, 16, events).unwrap();
        let (kept, _) = approximate_quantized_filter(&stream, &AqfConfig::default()).unwrap();
        assert!(kept.is_empty(), "kept {:?}", kept.events());
    }

    #[test]
    fn quantization_snaps_timestamps() {
        let stream = EventStream::from_events(
            16,
            16,
            vec![
                DvsEvent::new(5, 5, Polarity::On, 0.101),
                DvsEvent::new(5, 6, Polarity::On, 0.104),
            ],
        )
        .unwrap();
        let cfg = AqfConfig {
            quantization_step: 0.01,
            temporal_threshold: 0.5,
            ..AqfConfig::default()
        };
        let (kept, _) = approximate_quantized_filter(&stream, &cfg).unwrap();
        for e in kept.events() {
            let snapped = (e.t / 0.01).round() * 0.01;
            assert!(
                (e.t - snapped).abs() < 1e-6,
                "timestamp {} not on grid",
                e.t
            );
        }
    }

    #[test]
    fn empty_stream_is_fine() {
        let stream = EventStream::new(8, 8).unwrap();
        let (kept, report) = approximate_quantized_filter(&stream, &AqfConfig::default()).unwrap();
        assert!(kept.is_empty());
        assert_eq!(report.removal_fraction(), 0.0);
    }

    #[test]
    fn zero_step_disables_quantization() {
        let stream = EventStream::from_events(32, 32, signal_burst(8, 8, 0.123456, 6)).unwrap();
        let cfg = AqfConfig {
            quantization_step: 0.0,
            ..AqfConfig::default()
        };
        let (kept, _) = approximate_quantized_filter(&stream, &cfg).unwrap();
        assert!(kept
            .events()
            .iter()
            .any(|e| (e.t - 0.123456).abs() > 1e-6 || e.t == 0.123456 + 0.002));
    }

    #[test]
    fn report_accounting_consistent() {
        let mut events = signal_burst(10, 10, 0.2, 8);
        events.push(DvsEvent::new(30, 30, Polarity::On, 0.9));
        let stream = EventStream::from_events(32, 32, events).unwrap();
        let (_, r) = approximate_quantized_filter(&stream, &AqfConfig::default()).unwrap();
        assert_eq!(
            r.kept_events + r.removed_uncorrelated + r.removed_saturated,
            r.input_events
        );
    }
}
