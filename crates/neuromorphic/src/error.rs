use std::error::Error;
use std::fmt;

/// Error type for event-stream operations.
///
/// # Example
///
/// ```
/// use axsnn_neuromorphic::event::EventStream;
///
/// let err = EventStream::new(0, 32).unwrap_err();
/// assert!(err.to_string().contains("sensor"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NeuroError {
    /// Sensor geometry is invalid (zero width/height).
    InvalidSensor {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// An event lies outside the sensor area or time range.
    EventOutOfRange {
        /// Human-readable description of the offending coordinate.
        message: String,
    },
    /// A filter or accumulation parameter is invalid.
    InvalidParameter {
        /// Description of the violated precondition.
        message: String,
    },
    /// A streaming consumer received an event with a timestamp earlier
    /// than its predecessor. Streaming accumulation requires monotone
    /// (non-decreasing) timestamps; sort the stream first
    /// ([`crate::event::EventStream::sort_by_time`]) or replay it
    /// through [`crate::stream::StreamSession`] in time order.
    OutOfOrderEvent {
        /// Timestamp of the previously accepted event.
        previous: f32,
        /// Timestamp of the rejected event.
        current: f32,
    },
    /// The spiking-network simulation beneath a streaming session
    /// failed (wrapped [`axsnn_core::CoreError`]).
    Inference {
        /// The underlying core error, rendered.
        message: String,
    },
}

impl From<axsnn_core::CoreError> for NeuroError {
    fn from(e: axsnn_core::CoreError) -> Self {
        NeuroError::Inference {
            message: e.to_string(),
        }
    }
}

impl fmt::Display for NeuroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NeuroError::InvalidSensor { width, height } => {
                write!(f, "invalid sensor geometry {width}x{height}")
            }
            NeuroError::EventOutOfRange { message } => {
                write!(f, "event out of range: {message}")
            }
            NeuroError::InvalidParameter { message } => {
                write!(f, "invalid parameter: {message}")
            }
            NeuroError::OutOfOrderEvent { previous, current } => {
                write!(
                    f,
                    "out-of-order event: timestamp {current} arrived after {previous}; \
                     streaming accumulation requires non-decreasing timestamps"
                )
            }
            NeuroError::Inference { message } => {
                write!(f, "streaming inference failed: {message}")
            }
        }
    }
}

impl Error for NeuroError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NeuroError::InvalidSensor {
            width: 0,
            height: 128,
        };
        assert!(e.to_string().contains("0x128"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NeuroError>();
    }
}
