//! DVS event data model.
//!
//! An event is the tuple `(x, y, p, t)` from Sec. IV-B of the paper.
//! Timestamps are normalized to `[0, 1)` over the sample window, which is
//! what the Table II quantization steps (`q_t` ∈ {0.015, 0.01}) are
//! expressed in.

use crate::{NeuroError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Polarity of a brightness change event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Polarity {
    /// Brightness increase.
    On,
    /// Brightness decrease.
    Off,
}

impl Polarity {
    /// Channel index used by frame accumulation (`On` = 0, `Off` = 1).
    pub fn channel(&self) -> usize {
        match self {
            Polarity::On => 0,
            Polarity::Off => 1,
        }
    }

    /// The opposite polarity.
    pub fn flipped(&self) -> Polarity {
        match self {
            Polarity::On => Polarity::Off,
            Polarity::Off => Polarity::On,
        }
    }
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Polarity::On => write!(f, "+"),
            Polarity::Off => write!(f, "-"),
        }
    }
}

/// A single DVS event `(x, y, p, t)` with `t` normalized to `[0, 1)`.
///
/// # Example
///
/// ```
/// use axsnn_neuromorphic::event::{DvsEvent, Polarity};
///
/// let e = DvsEvent::new(10, 20, Polarity::On, 0.5);
/// assert_eq!(e.x, 10);
/// assert_eq!(e.polarity.channel(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvsEvent {
    /// Horizontal pixel coordinate.
    pub x: u16,
    /// Vertical pixel coordinate.
    pub y: u16,
    /// Brightness-change polarity.
    pub polarity: Polarity,
    /// Normalized timestamp in `[0, 1)`.
    pub t: f32,
}

impl DvsEvent {
    /// Creates an event.
    pub fn new(x: u16, y: u16, polarity: Polarity, t: f32) -> Self {
        DvsEvent { x, y, polarity, t }
    }
}

/// An ordered collection of events from one sample window of a sensor.
///
/// Events are kept sorted by timestamp (push enforces monotonicity
/// lazily: [`EventStream::sort_by_time`] restores order after bulk edits,
/// and the filters call it defensively).
///
/// # Example
///
/// ```
/// use axsnn_neuromorphic::event::{DvsEvent, EventStream, Polarity};
///
/// # fn main() -> Result<(), axsnn_neuromorphic::NeuroError> {
/// let mut s = EventStream::new(128, 128)?;
/// s.push(DvsEvent::new(64, 64, Polarity::On, 0.1))?;
/// s.push(DvsEvent::new(65, 64, Polarity::Off, 0.2))?;
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.width(), 128);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventStream {
    width: usize,
    height: usize,
    events: Vec<DvsEvent>,
}

impl EventStream {
    /// Creates an empty stream for a `width × height` sensor.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::InvalidSensor`] for zero dimensions.
    pub fn new(width: usize, height: usize) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(NeuroError::InvalidSensor { width, height });
        }
        Ok(EventStream {
            width,
            height,
            events: Vec::new(),
        })
    }

    /// Builds a stream from a pre-collected event list.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::InvalidSensor`] for zero dimensions or
    /// [`NeuroError::EventOutOfRange`] when any event lies outside the
    /// sensor or has a timestamp outside `[0, 1)`.
    pub fn from_events(width: usize, height: usize, events: Vec<DvsEvent>) -> Result<Self> {
        let mut stream = EventStream::new(width, height)?;
        for e in events {
            stream.push(e)?;
        }
        stream.sort_by_time();
        Ok(stream)
    }

    /// Sensor width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Sensor height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when no events are present.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events in timestamp order (if not manually perturbed).
    pub fn events(&self) -> &[DvsEvent] {
        &self.events
    }

    /// Mutable access for attack/filter passes; call
    /// [`EventStream::sort_by_time`] afterwards if timestamps changed.
    pub fn events_mut(&mut self) -> &mut Vec<DvsEvent> {
        &mut self.events
    }

    /// Appends an event after validating coordinates and timestamp.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::EventOutOfRange`] for invalid events.
    pub fn push(&mut self, e: DvsEvent) -> Result<()> {
        if (e.x as usize) >= self.width || (e.y as usize) >= self.height {
            return Err(NeuroError::EventOutOfRange {
                message: format!(
                    "({}, {}) outside {}x{} sensor",
                    e.x, e.y, self.width, self.height
                ),
            });
        }
        if !(0.0..1.0).contains(&e.t) {
            return Err(NeuroError::EventOutOfRange {
                message: format!("timestamp {} outside [0, 1)", e.t),
            });
        }
        self.events.push(e);
        Ok(())
    }

    /// Restores timestamp order after bulk mutation.
    pub fn sort_by_time(&mut self) {
        self.events
            .sort_by(|a, b| a.t.partial_cmp(&b.t).unwrap_or(std::cmp::Ordering::Equal));
    }

    /// Retains only events matching the predicate (filter passes).
    pub fn retain<F: FnMut(&DvsEvent) -> bool>(&mut self, f: F) {
        self.events.retain(f);
    }

    /// Mean event rate per pixel (events / pixel) — a sparsity measure.
    pub fn density(&self) -> f32 {
        self.events.len() as f32 / (self.width * self.height) as f32
    }

    /// Counts events whose pixel lies on the sensor boundary (used to
    /// detect Frame attacks).
    pub fn boundary_event_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                e.x == 0
                    || e.y == 0
                    || e.x as usize == self.width - 1
                    || e.y as usize == self.height - 1
            })
            .count()
    }
}

impl<'a> IntoIterator for &'a EventStream {
    type Item = &'a DvsEvent;
    type IntoIter = std::slice::Iter<'a, DvsEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sensor_rejected() {
        assert!(EventStream::new(0, 10).is_err());
        assert!(EventStream::new(10, 0).is_err());
    }

    #[test]
    fn push_validates_coordinates() {
        let mut s = EventStream::new(4, 4).unwrap();
        assert!(s.push(DvsEvent::new(3, 3, Polarity::On, 0.0)).is_ok());
        assert!(s.push(DvsEvent::new(4, 0, Polarity::On, 0.0)).is_err());
        assert!(s.push(DvsEvent::new(0, 4, Polarity::On, 0.0)).is_err());
    }

    #[test]
    fn push_validates_timestamp() {
        let mut s = EventStream::new(4, 4).unwrap();
        assert!(s.push(DvsEvent::new(0, 0, Polarity::On, 1.0)).is_err());
        assert!(s.push(DvsEvent::new(0, 0, Polarity::On, -0.1)).is_err());
        assert!(s.push(DvsEvent::new(0, 0, Polarity::On, 0.999)).is_ok());
    }

    #[test]
    fn from_events_sorts() {
        let s = EventStream::from_events(
            8,
            8,
            vec![
                DvsEvent::new(1, 1, Polarity::On, 0.9),
                DvsEvent::new(2, 2, Polarity::Off, 0.1),
            ],
        )
        .unwrap();
        assert!(s.events()[0].t < s.events()[1].t);
    }

    #[test]
    fn boundary_count() {
        let s = EventStream::from_events(
            4,
            4,
            vec![
                DvsEvent::new(0, 2, Polarity::On, 0.1),  // boundary
                DvsEvent::new(3, 1, Polarity::On, 0.2),  // boundary
                DvsEvent::new(1, 1, Polarity::On, 0.3),  // interior
                DvsEvent::new(2, 3, Polarity::Off, 0.4), // boundary
            ],
        )
        .unwrap();
        assert_eq!(s.boundary_event_count(), 3);
    }

    #[test]
    fn density_and_iter() {
        let s = EventStream::from_events(
            2,
            2,
            vec![
                DvsEvent::new(0, 0, Polarity::On, 0.1),
                DvsEvent::new(1, 1, Polarity::Off, 0.2),
            ],
        )
        .unwrap();
        assert_eq!(s.density(), 0.5);
        assert_eq!((&s).into_iter().count(), 2);
    }

    #[test]
    fn polarity_helpers() {
        assert_eq!(Polarity::On.channel(), 0);
        assert_eq!(Polarity::Off.channel(), 1);
        assert_eq!(Polarity::On.flipped(), Polarity::Off);
        assert_eq!(Polarity::On.to_string(), "+");
    }
}
