//! Event-to-frame accumulation.
//!
//! SNN simulators consume spike frames, so an [`EventStream`] is binned
//! into `T` time windows; each window becomes a `[2, H, W]` tensor (one
//! channel per polarity). Binary accumulation (any event → 1.0) is the
//! default, matching spike semantics; count accumulation is available for
//! rate analysis.

use crate::event::EventStream;
use crate::{NeuroError, Result};
use axsnn_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// How multiple events in the same (bin, pixel, polarity) cell combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Accumulation {
    /// Any event produces a unit spike (the SNN input convention).
    Binary,
    /// Events are counted.
    Count,
}

/// Bins an event stream into `time_steps` spike frames of shape
/// `[2, height, width]`.
///
/// # Errors
///
/// Returns [`NeuroError::InvalidParameter`] when `time_steps` is zero.
///
/// # Example
///
/// ```
/// use axsnn_neuromorphic::event::{DvsEvent, EventStream, Polarity};
/// use axsnn_neuromorphic::frames::{accumulate_frames, Accumulation};
///
/// # fn main() -> Result<(), axsnn_neuromorphic::NeuroError> {
/// let s = EventStream::from_events(4, 4, vec![
///     DvsEvent::new(1, 2, Polarity::On, 0.1),
///     DvsEvent::new(3, 0, Polarity::Off, 0.9),
/// ])?;
/// let frames = accumulate_frames(&s, 2, Accumulation::Binary)?;
/// assert_eq!(frames.len(), 2);
/// assert_eq!(frames[0].shape().dims(), &[2, 4, 4]);
/// assert_eq!(frames[0].at(&[0, 2, 1]).unwrap(), 1.0); // On event, first bin
/// assert_eq!(frames[1].at(&[1, 0, 3]).unwrap(), 1.0); // Off event, second bin
/// # Ok(())
/// # }
/// ```
pub fn accumulate_frames(
    stream: &EventStream,
    time_steps: usize,
    mode: Accumulation,
) -> Result<Vec<Tensor>> {
    if time_steps == 0 {
        return Err(NeuroError::InvalidParameter {
            message: "time_steps must be > 0".into(),
        });
    }
    let (w, h) = (stream.width(), stream.height());
    let mut frames = vec![Tensor::zeros(&[2, h, w]); time_steps];
    for e in stream {
        // t ∈ [0,1) ⇒ bin ∈ [0, time_steps).
        let bin = ((e.t * time_steps as f32) as usize).min(time_steps - 1);
        let c = e.polarity.channel();
        let idx = [c, e.y as usize, e.x as usize];
        let frame = &mut frames[bin];
        let current = frame.at(&idx).unwrap_or(0.0);
        let next = match mode {
            Accumulation::Binary => 1.0,
            Accumulation::Count => current + 1.0,
        };
        frame
            .set(&idx, next)
            .map_err(|te| NeuroError::EventOutOfRange {
                message: te.to_string(),
            })?;
    }
    Ok(frames)
}

/// Collapses an event stream into a single rate image `[2, H, W]` with
/// values normalized by the maximum cell count (all-zero streams stay
/// zero). Useful for visualization and for static-style attacks on
/// event data.
///
/// # Errors
///
/// Propagates accumulation errors.
pub fn rate_image(stream: &EventStream) -> Result<Tensor> {
    let frames = accumulate_frames(stream, 1, Accumulation::Count)?;
    let img = frames.into_iter().next().expect("one frame requested");
    let max = img.max();
    if max <= 0.0 {
        Ok(img)
    } else {
        Ok(img.scale(1.0 / max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DvsEvent, Polarity};

    fn stream() -> EventStream {
        EventStream::from_events(
            4,
            4,
            vec![
                DvsEvent::new(0, 0, Polarity::On, 0.05),
                DvsEvent::new(0, 0, Polarity::On, 0.10),
                DvsEvent::new(2, 1, Polarity::Off, 0.60),
                DvsEvent::new(3, 3, Polarity::On, 0.99),
            ],
        )
        .unwrap()
    }

    #[test]
    fn zero_time_steps_rejected() {
        assert!(accumulate_frames(&stream(), 0, Accumulation::Binary).is_err());
    }

    #[test]
    fn binary_accumulation_saturates() {
        let frames = accumulate_frames(&stream(), 4, Accumulation::Binary).unwrap();
        // Two events at (0,0,On) in bin 0 produce a single unit spike.
        assert_eq!(frames[0].at(&[0, 0, 0]).unwrap(), 1.0);
        assert_eq!(frames[0].sum(), 1.0);
    }

    #[test]
    fn count_accumulation_adds() {
        let frames = accumulate_frames(&stream(), 4, Accumulation::Count).unwrap();
        assert_eq!(frames[0].at(&[0, 0, 0]).unwrap(), 2.0);
    }

    #[test]
    fn events_land_in_correct_bins() {
        let frames = accumulate_frames(&stream(), 4, Accumulation::Binary).unwrap();
        assert_eq!(frames[2].at(&[1, 1, 2]).unwrap(), 1.0); // t=0.60 → bin 2
        assert_eq!(frames[3].at(&[0, 3, 3]).unwrap(), 1.0); // t=0.99 → bin 3
        assert_eq!(frames[1].sum(), 0.0);
    }

    #[test]
    fn polarities_use_separate_channels() {
        let frames = accumulate_frames(&stream(), 1, Accumulation::Count).unwrap();
        assert_eq!(frames[0].at(&[0, 1, 2]).unwrap(), 0.0); // On channel empty there
        assert_eq!(frames[0].at(&[1, 1, 2]).unwrap(), 1.0); // Off channel has it
    }

    #[test]
    fn rate_image_normalized() {
        let img = rate_image(&stream()).unwrap();
        assert_eq!(img.max(), 1.0);
        assert_eq!(img.at(&[0, 0, 0]).unwrap(), 1.0); // densest cell
        assert_eq!(img.at(&[1, 1, 2]).unwrap(), 0.5);
    }

    #[test]
    fn rate_image_of_empty_stream_is_zero() {
        let s = EventStream::new(4, 4).unwrap();
        let img = rate_image(&s).unwrap();
        assert_eq!(img.sum(), 0.0);
    }

    #[test]
    fn total_events_preserved_by_count_mode() {
        let frames = accumulate_frames(&stream(), 8, Accumulation::Count).unwrap();
        let total: f32 = frames.iter().map(|f| f.sum()).sum();
        assert_eq!(total, 4.0);
    }
}
