//! Neuromorphic (DVS) event substrate and the AQF defense.
//!
//! Dynamic vision sensors emit sparse `(x, y, polarity, t)` events instead
//! of frames. This crate provides:
//!
//! * [`event`] — [`event::DvsEvent`] and [`event::EventStream`], the
//!   event-camera data model,
//! * [`frames`] — accumulation of event streams into per-time-step spike
//!   frames (`[2, H, W]`, one channel per polarity) that feed the SNN,
//! * [`aqf`] — the paper's Algorithm 2, the *approximate
//!   quantization-aware filter*: timestamps are quantized with step `q_t`
//!   and spatio-temporally uncorrelated events (adversarial noise) are
//!   removed,
//! * [`stats`] — stream statistics, rate profiles, windowing and
//!   cropping transforms.
//!
//! # Example
//!
//! ```
//! use axsnn_neuromorphic::event::{DvsEvent, EventStream, Polarity};
//!
//! # fn main() -> Result<(), axsnn_neuromorphic::NeuroError> {
//! let mut stream = EventStream::new(32, 32)?;
//! stream.push(DvsEvent::new(3, 4, Polarity::On, 0.25))?;
//! assert_eq!(stream.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod aqf;
pub mod event;
pub mod frames;
pub mod stats;

pub use error::NeuroError;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, NeuroError>;
