//! Neuromorphic (DVS) event substrate and the AQF defense.
//!
//! Dynamic vision sensors emit sparse `(x, y, polarity, t)` events instead
//! of frames. This crate provides:
//!
//! * [`event`] — [`event::DvsEvent`] and [`event::EventStream`], the
//!   event-camera data model,
//! * [`frames`] — accumulation of event streams into per-time-step spike
//!   frames (`[2, H, W]`, one channel per polarity) that feed the SNN,
//! * [`aqf`] — the paper's Algorithm 2, the *approximate
//!   quantization-aware filter*: timestamps are quantized with step `q_t`
//!   and spatio-temporally uncorrelated events (adversarial noise) are
//!   removed,
//! * [`stats`] — stream statistics, rate profiles, windowing and
//!   cropping transforms,
//! * [`stream`] — streaming event-stream inference: incremental
//!   membrane updates as events arrive ([`stream::StreamSession`] over
//!   the core `FrameStepper`), uniform/rolling window accumulation
//!   ([`stream::StreamAccumulator`]) and the causal in-stream AQF
//!   ([`stream::StreamingAqf`]).
//!
//! # Provenance
//!
//! The event model, offline frame accumulation and the two-pass AQF
//! are seed modules; the streaming subsystem landed in PR 9. Streamed
//! classification is pinned **bit-identical** to the offline
//! accumulate-then-forward path (same window schedule, every density,
//! every plan override, int8/f16 planes installed) by the
//! `stream_equivalence` suite in `tests/`; the causal AQF's superset /
//! exactness relationship to the offline filter is pinned there too.
//!
//! # Example
//!
//! ```
//! use axsnn_neuromorphic::event::{DvsEvent, EventStream, Polarity};
//!
//! # fn main() -> Result<(), axsnn_neuromorphic::NeuroError> {
//! let mut stream = EventStream::new(32, 32)?;
//! stream.push(DvsEvent::new(3, 4, Polarity::On, 0.25))?;
//! assert_eq!(stream.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod aqf;
pub mod event;
pub mod frames;
pub mod stats;
pub mod stream;

pub use error::NeuroError;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, NeuroError>;
