//! Event-stream statistics and transformations.
//!
//! Diagnostics a practitioner needs when working with event data:
//! rate profiles, polarity balance, per-pixel histograms, plus windowing
//! and cropping transforms used to build training samples from longer
//! recordings.

use crate::event::{DvsEvent, EventStream, Polarity};
use crate::Result;
use serde::{Deserialize, Serialize};

/// Summary statistics of an event stream.
///
/// # Example
///
/// ```
/// use axsnn_neuromorphic::event::{DvsEvent, EventStream, Polarity};
/// use axsnn_neuromorphic::stats::stream_stats;
///
/// # fn main() -> Result<(), axsnn_neuromorphic::NeuroError> {
/// let s = EventStream::from_events(8, 8, vec![
///     DvsEvent::new(1, 1, Polarity::On, 0.1),
///     DvsEvent::new(2, 2, Polarity::Off, 0.6),
/// ])?;
/// let st = stream_stats(&s);
/// assert_eq!(st.total_events, 2);
/// assert_eq!(st.on_events, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Total number of events.
    pub total_events: usize,
    /// ON (brightness-increase) events.
    pub on_events: usize,
    /// OFF events.
    pub off_events: usize,
    /// Number of distinct active pixels.
    pub active_pixels: usize,
    /// Maximum events at a single pixel.
    pub max_events_per_pixel: u32,
    /// Mean event timestamp (temporal centre of mass).
    pub mean_timestamp: f32,
    /// Events on the sensor boundary.
    pub boundary_events: usize,
}

/// Computes [`StreamStats`] in one pass.
pub fn stream_stats(stream: &EventStream) -> StreamStats {
    let (w, h) = (stream.width(), stream.height());
    let mut per_pixel = vec![0u32; w * h];
    let mut on = 0usize;
    let mut t_sum = 0.0f64;
    for e in stream {
        per_pixel[e.y as usize * w + e.x as usize] += 1;
        if e.polarity == Polarity::On {
            on += 1;
        }
        t_sum += e.t as f64;
    }
    let total = stream.len();
    StreamStats {
        total_events: total,
        on_events: on,
        off_events: total - on,
        active_pixels: per_pixel.iter().filter(|&&c| c > 0).count(),
        max_events_per_pixel: per_pixel.iter().copied().max().unwrap_or(0),
        mean_timestamp: if total == 0 {
            0.0
        } else {
            (t_sum / total as f64) as f32
        },
        boundary_events: stream.boundary_event_count(),
    }
}

/// Event rate over `bins` uniform time windows (events per window).
///
/// # Example
///
/// ```
/// use axsnn_neuromorphic::event::{DvsEvent, EventStream, Polarity};
/// use axsnn_neuromorphic::stats::rate_profile;
///
/// # fn main() -> Result<(), axsnn_neuromorphic::NeuroError> {
/// let s = EventStream::from_events(4, 4, vec![
///     DvsEvent::new(0, 0, Polarity::On, 0.1),
///     DvsEvent::new(0, 0, Polarity::On, 0.15),
///     DvsEvent::new(0, 0, Polarity::On, 0.9),
/// ])?;
/// assert_eq!(rate_profile(&s, 2), vec![2, 1]);
/// # Ok(())
/// # }
/// ```
pub fn rate_profile(stream: &EventStream, bins: usize) -> Vec<usize> {
    let mut profile = vec![0usize; bins.max(1)];
    let n = profile.len();
    for e in stream {
        let b = ((e.t * n as f32) as usize).min(n - 1);
        profile[b] += 1;
    }
    profile
}

/// Extracts the sub-stream inside the time window `[from, to)`, with
/// timestamps renormalized to `[0, 1)` over the window.
///
/// # Errors
///
/// Returns [`crate::NeuroError::InvalidParameter`] when the window is
/// empty or out of range.
pub fn time_window(stream: &EventStream, from: f32, to: f32) -> Result<EventStream> {
    if !(0.0..=1.0).contains(&from) || !(0.0..=1.0).contains(&to) || from >= to {
        return Err(crate::NeuroError::InvalidParameter {
            message: format!("invalid time window [{from}, {to})"),
        });
    }
    let span = to - from;
    let mut out = EventStream::new(stream.width(), stream.height())?;
    for e in stream {
        if e.t >= from && e.t < to {
            let mut copy = *e;
            copy.t = ((copy.t - from) / span).min(0.999_999);
            out.push(copy)?;
        }
    }
    Ok(out)
}

/// Crops to a spatial region `[x0, x0+w) × [y0, y0+h)` with coordinates
/// re-based to the crop origin.
///
/// # Errors
///
/// Returns [`crate::NeuroError::InvalidParameter`] when the crop leaves
/// the sensor.
pub fn crop(
    stream: &EventStream,
    x0: usize,
    y0: usize,
    width: usize,
    height: usize,
) -> Result<EventStream> {
    if width == 0 || height == 0 || x0 + width > stream.width() || y0 + height > stream.height() {
        return Err(crate::NeuroError::InvalidParameter {
            message: format!(
                "crop {width}x{height}@({x0},{y0}) exceeds sensor {}x{}",
                stream.width(),
                stream.height()
            ),
        });
    }
    let mut out = EventStream::new(width, height)?;
    for e in stream {
        let (x, y) = (e.x as usize, e.y as usize);
        if x >= x0 && x < x0 + width && y >= y0 && y < y0 + height {
            out.push(DvsEvent::new(
                (x - x0) as u16,
                (y - y0) as u16,
                e.polarity,
                e.t,
            ))?;
        }
    }
    Ok(out)
}

/// Merges two streams of the same sensor into one time-sorted stream.
///
/// # Errors
///
/// Returns [`crate::NeuroError::InvalidParameter`] for mismatched
/// sensor geometry.
pub fn merge(a: &EventStream, b: &EventStream) -> Result<EventStream> {
    if a.width() != b.width() || a.height() != b.height() {
        return Err(crate::NeuroError::InvalidParameter {
            message: format!(
                "cannot merge {}x{} with {}x{}",
                a.width(),
                a.height(),
                b.width(),
                b.height()
            ),
        });
    }
    let mut events: Vec<DvsEvent> = a.events().to_vec();
    events.extend_from_slice(b.events());
    EventStream::from_events(a.width(), a.height(), events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> EventStream {
        EventStream::from_events(
            8,
            8,
            vec![
                DvsEvent::new(0, 0, Polarity::On, 0.05),
                DvsEvent::new(3, 4, Polarity::On, 0.25),
                DvsEvent::new(3, 4, Polarity::Off, 0.55),
                DvsEvent::new(7, 7, Polarity::Off, 0.95),
            ],
        )
        .unwrap()
    }

    #[test]
    fn stats_one_pass() {
        let st = stream_stats(&stream());
        assert_eq!(st.total_events, 4);
        assert_eq!(st.on_events, 2);
        assert_eq!(st.off_events, 2);
        assert_eq!(st.active_pixels, 3);
        assert_eq!(st.max_events_per_pixel, 2);
        assert_eq!(st.boundary_events, 2);
        assert!((st.mean_timestamp - 0.45).abs() < 1e-5);
    }

    #[test]
    fn stats_empty_stream() {
        let s = EventStream::new(4, 4).unwrap();
        let st = stream_stats(&s);
        assert_eq!(st.total_events, 0);
        assert_eq!(st.mean_timestamp, 0.0);
        assert_eq!(st.max_events_per_pixel, 0);
    }

    #[test]
    fn rate_profile_bins() {
        assert_eq!(rate_profile(&stream(), 4), vec![1, 1, 1, 1]);
        assert_eq!(rate_profile(&stream(), 2), vec![2, 2]);
        assert_eq!(rate_profile(&stream(), 1), vec![4]);
    }

    #[test]
    fn time_window_renormalizes() {
        let w = time_window(&stream(), 0.2, 0.6).unwrap();
        assert_eq!(w.len(), 2);
        // t = 0.25 → (0.25−0.2)/0.4 = 0.125; t = 0.55 → 0.875.
        assert!((w.events()[0].t - 0.125).abs() < 1e-5);
        assert!((w.events()[1].t - 0.875).abs() < 1e-5);
        assert!(time_window(&stream(), 0.5, 0.5).is_err());
        assert!(time_window(&stream(), -0.1, 0.5).is_err());
    }

    #[test]
    fn crop_rebases_coordinates() {
        let c = crop(&stream(), 2, 3, 4, 4).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.events()[0].x, 1); // 3 − 2
        assert_eq!(c.events()[0].y, 1); // 4 − 3
        assert!(crop(&stream(), 6, 6, 4, 4).is_err());
    }

    #[test]
    fn merge_sorts_and_validates() {
        let a = stream();
        let b =
            EventStream::from_events(8, 8, vec![DvsEvent::new(1, 1, Polarity::On, 0.15)]).unwrap();
        let m = merge(&a, &b).unwrap();
        assert_eq!(m.len(), 5);
        for pair in m.events().windows(2) {
            assert!(pair[0].t <= pair[1].t);
        }
        let other = EventStream::new(4, 4).unwrap();
        assert!(merge(&a, &other).is_err());
    }
}
