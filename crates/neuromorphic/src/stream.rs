//! Streaming DVS event-stream inference.
//!
//! The offline pipeline materializes a whole sample before the first
//! membrane update: events → [`crate::frames::accumulate_frames`] →
//! `SpikingNetwork::forward`. This module removes that barrier. Events
//! are consumed *as they arrive*: a [`StreamAccumulator`] folds each
//! event into the open time window(s) of a [`WindowSchedule`], a window
//! that closes is immediately stepped through the network's incremental
//! [`FrameStepper`], and AQF
//! filtering (when enabled) runs in-stream through [`StreamingAqf`]
//! instead of over a materialized stream.
//!
//! Because `SpikingNetwork::forward` is itself implemented on top of
//! `FrameStepper`, the streamed path executes the exact same per-frame
//! operations as the offline path — every
//! [`ExecPlan`](axsnn_core::plan::ExecPlan) dispatch decision (density
//! gates, weight planes, dense fallbacks) applies per window, and
//! streamed classification over a full sample is **bit-identical** to
//! the frame-accumulated path for the same window schedule. The
//! `stream_equivalence` suite pins this at every density and with
//! int8/f16 weight planes installed.
//!
//! # Example
//!
//! ```
//! use axsnn_core::layer::Layer;
//! use axsnn_core::network::{SnnConfig, SpikingNetwork};
//! use axsnn_neuromorphic::event::{DvsEvent, Polarity};
//! use axsnn_neuromorphic::frames::Accumulation;
//! use axsnn_neuromorphic::stream::{StreamConfig, StreamSession, WindowSchedule};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let cfg = SnnConfig { threshold: 0.5, time_steps: 4, leak: 0.9 };
//! let mut net = SpikingNetwork::new(
//!     vec![
//!         Layer::spiking_linear(&mut rng, 2 * 4 * 4, 8, &cfg),
//!         Layer::output_linear(&mut rng, 8, 3),
//!     ],
//!     cfg,
//! )?;
//! let stream_cfg = StreamConfig {
//!     schedule: WindowSchedule::Uniform { time_steps: 4 },
//!     mode: Accumulation::Binary,
//!     aqf: None,
//! };
//! let mut session = StreamSession::begin(&mut net, 4, 4, stream_cfg)?;
//! session.push(DvsEvent::new(1, 2, Polarity::On, 0.1), &mut rng)?;
//! session.push(DvsEvent::new(2, 2, Polarity::Off, 0.6), &mut rng)?;
//! let outcome = session.finish(&mut rng)?;
//! assert_eq!(outcome.windows, 4);
//! assert!(outcome.prediction < 3);
//! # Ok(())
//! # }
//! ```

use crate::aqf::{AqfConfig, AqfReport};
use crate::event::{DvsEvent, EventStream};
use crate::frames::Accumulation;
use crate::{NeuroError, Result};
use axsnn_core::network::{FrameStepper, SpikeStats, SpikingNetwork};
use axsnn_tensor::Tensor;
use rand::Rng;
use std::collections::VecDeque;

/// How a streaming session slices the `[0, 1)` sample time axis into
/// spike frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowSchedule {
    /// `time_steps` contiguous equal-width bins — the schedule of the
    /// offline [`crate::frames::accumulate_frames`], using the *exact*
    /// same bin formula (`⌊t·T⌋` clamped to `T-1`) so streamed frames
    /// are bit-identical to offline frames.
    Uniform {
        /// Number of bins (the SNN's simulation time steps).
        time_steps: usize,
    },
    /// `windows` rolling windows where window `i` covers
    /// `[i·hop, i·hop + len)`; overlapping when `hop < len`, gapped
    /// when `hop > len` (events in a gap are dropped and counted).
    Rolling {
        /// Number of windows (frames produced).
        windows: usize,
        /// Window length in normalized time units.
        len: f32,
        /// Start-to-start stride in normalized time units.
        hop: f32,
    },
}

impl WindowSchedule {
    /// Total number of frames the schedule produces.
    pub fn window_count(&self) -> usize {
        match *self {
            WindowSchedule::Uniform { time_steps } => time_steps,
            WindowSchedule::Rolling { windows, .. } => windows,
        }
    }

    /// Validates the schedule parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::InvalidParameter`] for zero windows or
    /// non-positive rolling `len`/`hop`.
    pub fn validate(&self) -> Result<()> {
        match *self {
            WindowSchedule::Uniform { time_steps } => {
                if time_steps == 0 {
                    return Err(NeuroError::InvalidParameter {
                        message: "uniform schedule needs time_steps > 0".into(),
                    });
                }
            }
            WindowSchedule::Rolling { windows, len, hop } => {
                if windows == 0 {
                    return Err(NeuroError::InvalidParameter {
                        message: "rolling schedule needs windows > 0".into(),
                    });
                }
                // NaN fails `is_finite` too, so it cannot sneak past
                // the positivity check.
                if !(len.is_finite() && len > 0.0 && hop.is_finite() && hop > 0.0) {
                    return Err(NeuroError::InvalidParameter {
                        message: format!(
                            "rolling schedule needs finite len > 0 and hop > 0, \
                             got len={len} hop={hop}"
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Configuration of a [`StreamSession`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Time-axis slicing into frames.
    pub schedule: WindowSchedule,
    /// Per-cell accumulation semantics (Binary for spike frames).
    pub mode: Accumulation,
    /// In-stream AQF filtering (see [`StreamingAqf`]); `None` disables.
    pub aqf: Option<AqfConfig>,
}

/// Incrementally folds time-ordered DVS events into the spike frames of
/// a [`WindowSchedule`], emitting each frame the moment its window
/// closes (an event arrives past the window's end).
///
/// Timestamps must be non-decreasing — an out-of-order event returns
/// [`NeuroError::OutOfOrderEvent`] — which is what lets windows close
/// eagerly and memory stay bounded by the number of simultaneously open
/// windows instead of the whole sample.
///
/// For [`WindowSchedule::Uniform`] the produced frames are bit-identical
/// to [`crate::frames::accumulate_frames`] over the same events: binary
/// accumulation is idempotent and count accumulation adds exact `1.0`s,
/// so within-bin ordering cannot change a cell.
#[derive(Debug, Clone)]
pub struct StreamAccumulator {
    width: usize,
    height: usize,
    schedule: WindowSchedule,
    mode: Accumulation,
    /// Frames for windows `next_window .. next_window + open.len()`.
    open: VecDeque<Tensor>,
    /// Lowest window index not yet emitted.
    next_window: usize,
    last_t: Option<f32>,
    events_in: usize,
    events_dropped: usize,
}

impl StreamAccumulator {
    /// Creates an accumulator for a `width × height` sensor.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::InvalidSensor`] for zero dimensions and
    /// [`NeuroError::InvalidParameter`] for an invalid schedule.
    pub fn new(
        width: usize,
        height: usize,
        schedule: WindowSchedule,
        mode: Accumulation,
    ) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(NeuroError::InvalidSensor { width, height });
        }
        schedule.validate()?;
        Ok(StreamAccumulator {
            width,
            height,
            schedule,
            mode,
            open: VecDeque::new(),
            next_window: 0,
            last_t: None,
            events_in: 0,
            events_dropped: 0,
        })
    }

    fn zero_frame(&self) -> Tensor {
        Tensor::zeros(&[2, self.height, self.width])
    }

    /// Emits the frame of window `next_window` (a zero frame when the
    /// window was never touched by an event).
    fn pop_front_window(&mut self) -> Tensor {
        self.next_window += 1;
        self.open.pop_front().unwrap_or_else(|| self.zero_frame())
    }

    fn stamp(frame: &mut Tensor, e: &DvsEvent, mode: Accumulation) {
        let idx = [e.polarity.channel(), e.y as usize, e.x as usize];
        let current = frame.at(&idx).unwrap_or(0.0);
        let next = match mode {
            Accumulation::Binary => 1.0,
            Accumulation::Count => current + 1.0,
        };
        // Coordinates were validated against the sensor, so set cannot
        // fail; ignore the impossible branch rather than plumb it.
        let _ = frame.set(&idx, next);
    }

    /// Folds one event in, returning every frame whose window closed
    /// before it (usually empty; more than one when the event jumps
    /// past empty windows).
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::EventOutOfRange`] for events outside the
    /// sensor or `[0, 1)`, and [`NeuroError::OutOfOrderEvent`] when the
    /// timestamp decreases.
    pub fn push(&mut self, e: DvsEvent) -> Result<Vec<Tensor>> {
        if (e.x as usize) >= self.width || (e.y as usize) >= self.height {
            return Err(NeuroError::EventOutOfRange {
                message: format!(
                    "({}, {}) outside {}x{} sensor",
                    e.x, e.y, self.width, self.height
                ),
            });
        }
        if !(0.0..1.0).contains(&e.t) {
            return Err(NeuroError::EventOutOfRange {
                message: format!("timestamp {} outside [0, 1)", e.t),
            });
        }
        if let Some(prev) = self.last_t {
            if e.t < prev {
                return Err(NeuroError::OutOfOrderEvent {
                    previous: prev,
                    current: e.t,
                });
            }
        }
        self.last_t = Some(e.t);
        self.events_in += 1;

        let mut emitted = Vec::new();
        let mut stamped = false;
        match self.schedule {
            WindowSchedule::Uniform { time_steps } => {
                // The offline bin formula, verbatim — never an interval
                // comparison, so float boundary behaviour matches
                // accumulate_frames exactly.
                let bin = ((e.t * time_steps as f32) as usize).min(time_steps - 1);
                while self.next_window < bin {
                    emitted.push(self.pop_front_window());
                }
                if self.open.is_empty() {
                    let frame = self.zero_frame();
                    self.open.push_back(frame);
                }
                Self::stamp(&mut self.open[0], &e, self.mode);
                stamped = true;
            }
            WindowSchedule::Rolling { windows, len, hop } => {
                while self.next_window < windows && (self.next_window as f32) * hop + len <= e.t {
                    emitted.push(self.pop_front_window());
                }
                while self.next_window + self.open.len() < windows
                    && ((self.next_window + self.open.len()) as f32) * hop <= e.t
                {
                    let frame = self.zero_frame();
                    self.open.push_back(frame);
                }
                for k in 0..self.open.len() {
                    let start = (self.next_window + k) as f32 * hop;
                    if start <= e.t && e.t < start + len {
                        Self::stamp(&mut self.open[k], &e, self.mode);
                        stamped = true;
                    }
                }
            }
        }
        if !stamped {
            self.events_dropped += 1;
        }
        Ok(emitted)
    }

    /// Ends the stream, emitting every remaining frame (open windows
    /// plus trailing never-opened windows as zero frames) so the total
    /// across all [`StreamAccumulator::push`] calls and this is exactly
    /// [`WindowSchedule::window_count`].
    pub fn finish(mut self) -> Vec<Tensor> {
        let total = self.schedule.window_count();
        let mut rest = Vec::with_capacity(total - self.next_window);
        while self.next_window < total {
            rest.push(self.pop_front_window());
        }
        rest
    }

    /// Events accepted so far.
    pub fn events_in(&self) -> usize {
        self.events_in
    }

    /// Events accepted but covered by no window (rolling schedules with
    /// gaps, or events past the last window's end).
    pub fn events_dropped(&self) -> usize {
        self.events_dropped
    }

    /// Windows emitted so far.
    pub fn windows_emitted(&self) -> usize {
        self.next_window
    }
}

/// Causal (single-pass) variant of the AQF filter
/// ([`crate::aqf::approximate_quantized_filter`]) for streaming use:
/// events are judged the moment they arrive, with hot-pixel state built
/// from the running per-pixel count instead of the full-sample count.
///
/// Relationship to the offline filter, pinned by `stream_equivalence`:
///
/// * **Superset**: every event the streaming filter removes, the
///   offline filter removes too (`kept_streaming ⊇ kept_offline`) — a
///   pixel hot for the running count is hot for the final count, and
///   streaming neighbourhood memory is stamped at least as recently as
///   offline memory.
/// * **Exact**: when no pixel ever crosses the hot cut, both filters
///   keep the identical event sequence with identical quantized
///   timestamps.
#[derive(Debug, Clone)]
pub struct StreamingAqf {
    cfg: AqfConfig,
    width: usize,
    height: usize,
    hot_cut: f32,
    memory: Vec<f32>,
    own_count: Vec<u32>,
    input_events: usize,
    removed_uncorrelated: usize,
    removed_saturated: usize,
}

impl StreamingAqf {
    const NEVER: f32 = -1.0e9;

    /// Creates a streaming filter for a `width × height` sensor.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::InvalidSensor`] for zero dimensions and
    /// [`NeuroError::InvalidParameter`] for an invalid configuration.
    pub fn new(width: usize, height: usize, cfg: AqfConfig) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(NeuroError::InvalidSensor { width, height });
        }
        cfg.validate()?;
        Ok(StreamingAqf {
            hot_cut: cfg.activity_threshold as f32 * cfg.saturation_persistence as f32,
            cfg,
            width,
            height,
            memory: vec![Self::NEVER; width * height],
            own_count: vec![0; width * height],
            input_events: 0,
            removed_uncorrelated: 0,
            removed_saturated: 0,
        })
    }

    /// Judges one event: `Some(event)` (timestamp quantized) when kept,
    /// `None` when removed as hot or temporally uncorrelated. The caller
    /// must supply events in time order; coordinates are assumed
    /// in-sensor (the accumulator re-validates downstream).
    pub fn push(&mut self, e: DvsEvent) -> Option<DvsEvent> {
        self.input_events += 1;
        let tq = if self.cfg.quantization_step > 0.0 {
            ((e.t / self.cfg.quantization_step).round() * self.cfg.quantization_step)
                .clamp(0.0, 0.999_999)
        } else {
            e.t
        };
        let (ex, ey) = (e.x as isize, e.y as isize);
        let own = e.y as usize * self.width + e.x as usize;
        self.own_count[own] += 1;
        // Causal hot test: the running count including this event. Once
        // a pixel crosses the cut it stays hot (counts never decrease),
        // mirroring the offline filter's sticky full-sample flag.
        let hot = self.own_count[own] as f32 > self.hot_cut;
        let uncorrelated = tq - self.memory[own] > self.cfg.temporal_threshold;

        // Hot pixels do not get to validate their neighbours — same
        // rule as the offline pass 2.
        if !hot {
            let s = self.cfg.spatial_window as isize;
            for dy in -s..=s {
                for dx in -s..=s {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let (nx, ny) = (ex + dx, ey + dy);
                    if nx < 0 || ny < 0 || nx >= self.width as isize || ny >= self.height as isize {
                        continue;
                    }
                    self.memory[ny as usize * self.width + nx as usize] = tq;
                }
            }
        }

        if hot {
            self.removed_saturated += 1;
            return None;
        }
        if uncorrelated {
            self.removed_uncorrelated += 1;
            return None;
        }
        let mut kept = e;
        kept.t = tq;
        Some(kept)
    }

    /// Removal statistics so far, in the offline report format.
    pub fn report(&self) -> AqfReport {
        AqfReport {
            input_events: self.input_events,
            kept_events: self.input_events - self.removed_uncorrelated - self.removed_saturated,
            removed_uncorrelated: self.removed_uncorrelated,
            removed_saturated: self.removed_saturated,
        }
    }
}

/// Result of a completed [`StreamSession`].
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Accumulated readout logits (sum over all windows).
    pub logits: Tensor,
    /// `argmax` of the logits.
    pub prediction: usize,
    /// Spiking statistics of the run.
    pub stats: SpikeStats,
    /// Windows stepped through the network
    /// (= [`WindowSchedule::window_count`]).
    pub windows: usize,
    /// Events pushed into the session.
    pub events_in: usize,
    /// Events surviving the in-stream AQF filter (equals `events_in`
    /// when filtering is disabled).
    pub events_kept: usize,
    /// Kept events covered by no window (rolling gaps / past the end).
    pub events_dropped: usize,
    /// In-stream filter report when AQF was enabled.
    pub aqf: Option<AqfReport>,
}

/// A live event-stream inference session: events in, spike frames
/// stepped through the [`SpikingNetwork`] the moment their window
/// closes, logits out.
///
/// The session drives the network through
/// [`SpikingNetwork::frame_stepper`] — the same incremental engine the
/// offline `forward` is built on — so the full
/// [`ExecPlan`](axsnn_core::plan::ExecPlan) dispatch seam (density
/// gates, weight planes, dense fallbacks) applies to every window and
/// the final logits are bit-identical to the offline path for the same
/// window schedule.
#[derive(Debug)]
pub struct StreamSession<'a> {
    stepper: FrameStepper<'a>,
    acc: StreamAccumulator,
    aqf: Option<StreamingAqf>,
    events_in: usize,
    events_kept: usize,
}

impl<'a> StreamSession<'a> {
    /// Opens a session over `net` for a `width × height` sensor,
    /// resetting all membrane state.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::InvalidSensor`] /
    /// [`NeuroError::InvalidParameter`] for bad geometry, schedule or
    /// AQF configuration.
    pub fn begin(
        net: &'a mut SpikingNetwork,
        width: usize,
        height: usize,
        cfg: StreamConfig,
    ) -> Result<Self> {
        let acc = StreamAccumulator::new(width, height, cfg.schedule, cfg.mode)?;
        let aqf = match cfg.aqf {
            Some(filter_cfg) => Some(StreamingAqf::new(width, height, filter_cfg)?),
            None => None,
        };
        Ok(StreamSession {
            stepper: net.frame_stepper(false),
            acc,
            aqf,
            events_in: 0,
            events_kept: 0,
        })
    }

    /// Feeds one event, stepping the network over every window the
    /// event closes. Returns the number of windows stepped (usually 0).
    ///
    /// # Errors
    ///
    /// Propagates accumulator validation errors
    /// ([`NeuroError::EventOutOfRange`],
    /// [`NeuroError::OutOfOrderEvent`]) and wraps simulation failures
    /// as [`NeuroError::Inference`].
    pub fn push<R: Rng>(&mut self, e: DvsEvent, rng: &mut R) -> Result<usize> {
        self.events_in += 1;
        let kept = match &mut self.aqf {
            Some(filter) => match filter.push(e) {
                Some(kept) => kept,
                None => return Ok(0),
            },
            None => e,
        };
        self.events_kept += 1;
        let frames = self.acc.push(kept)?;
        let stepped = frames.len();
        for frame in &frames {
            self.stepper.step(frame, rng)?;
        }
        Ok(stepped)
    }

    /// Windows stepped through the network so far.
    pub fn windows_stepped(&self) -> usize {
        self.stepper.steps()
    }

    /// The logits accumulated over the windows stepped so far — an
    /// *anytime* readout available before the sample ends (`None`
    /// before the first window closes).
    pub fn logits_so_far(&self) -> Option<&Tensor> {
        self.stepper.logits_so_far()
    }

    /// Closes the session: flushes all remaining windows through the
    /// network and returns the accumulated outcome.
    ///
    /// # Errors
    ///
    /// Wraps simulation failures as [`NeuroError::Inference`].
    pub fn finish<R: Rng>(self, rng: &mut R) -> Result<StreamOutcome> {
        let StreamSession {
            mut stepper,
            acc,
            aqf,
            events_in,
            events_kept,
        } = self;
        let events_dropped = {
            let windows = acc.schedule.window_count();
            let dropped = acc.events_dropped();
            for frame in acc.finish() {
                stepper.step(&frame, rng)?;
            }
            debug_assert_eq!(stepper.steps(), windows);
            dropped
        };
        let out = stepper.finish()?;
        Ok(StreamOutcome {
            prediction: out.logits.argmax().unwrap_or(0),
            windows: out.stats.time_steps,
            logits: out.logits,
            stats: out.stats,
            events_in,
            events_kept,
            events_dropped,
            aqf: aqf.map(|f| f.report()),
        })
    }
}

/// Convenience: replays an already-collected [`EventStream`] through a
/// [`StreamSession`] in time order and returns the outcome.
///
/// # Errors
///
/// Propagates session errors; the stream is sorted defensively first,
/// so [`NeuroError::OutOfOrderEvent`] cannot occur.
pub fn classify_event_stream<R: Rng>(
    net: &mut SpikingNetwork,
    stream: &EventStream,
    cfg: StreamConfig,
    rng: &mut R,
) -> Result<StreamOutcome> {
    let mut ordered = stream.clone();
    ordered.sort_by_time();
    let mut session = StreamSession::begin(net, stream.width(), stream.height(), cfg)?;
    for e in &ordered {
        session.push(*e, rng)?;
    }
    session.finish(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Polarity;
    use crate::frames::accumulate_frames;

    fn ev(x: u16, y: u16, p: Polarity, t: f32) -> DvsEvent {
        DvsEvent::new(x, y, p, t)
    }

    #[test]
    fn uniform_matches_offline_accumulator() {
        let events = vec![
            ev(0, 0, Polarity::On, 0.05),
            ev(1, 2, Polarity::Off, 0.05),
            ev(0, 0, Polarity::On, 0.30),
            ev(3, 3, Polarity::On, 0.99),
        ];
        for mode in [Accumulation::Binary, Accumulation::Count] {
            let offline = accumulate_frames(
                &EventStream::from_events(4, 4, events.clone()).unwrap(),
                4,
                mode,
            )
            .unwrap();
            let mut acc =
                StreamAccumulator::new(4, 4, WindowSchedule::Uniform { time_steps: 4 }, mode)
                    .unwrap();
            let mut streamed = Vec::new();
            for e in &events {
                streamed.extend(acc.push(*e).unwrap());
            }
            streamed.extend(acc.finish());
            assert_eq!(streamed.len(), offline.len());
            for (a, b) in streamed.iter().zip(&offline) {
                assert_eq!(a.as_slice(), b.as_slice());
            }
        }
    }

    #[test]
    fn out_of_order_is_explicit_error() {
        let mut acc = StreamAccumulator::new(
            4,
            4,
            WindowSchedule::Uniform { time_steps: 4 },
            Accumulation::Binary,
        )
        .unwrap();
        acc.push(ev(0, 0, Polarity::On, 0.5)).unwrap();
        let err = acc.push(ev(0, 0, Polarity::On, 0.4)).unwrap_err();
        assert!(matches!(err, NeuroError::OutOfOrderEvent { .. }));
    }

    #[test]
    fn rolling_overlap_stamps_every_covering_window() {
        // Windows: [0,0.5), [0.25,0.75), [0.5,1.0) — t=0.3 covers 0,1.
        let mut acc = StreamAccumulator::new(
            4,
            4,
            WindowSchedule::Rolling {
                windows: 3,
                len: 0.5,
                hop: 0.25,
            },
            Accumulation::Binary,
        )
        .unwrap();
        let emitted = acc.push(ev(1, 1, Polarity::On, 0.3)).unwrap();
        assert!(emitted.is_empty());
        let frames = acc.finish();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].at(&[0, 1, 1]).unwrap(), 1.0);
        assert_eq!(frames[1].at(&[0, 1, 1]).unwrap(), 1.0);
        assert_eq!(frames[2].at(&[0, 1, 1]).unwrap(), 0.0);
    }

    #[test]
    fn rolling_gap_drops_and_counts() {
        // Windows: [0,0.2), [0.5,0.7) — t=0.3 lies in the gap.
        let mut acc = StreamAccumulator::new(
            4,
            4,
            WindowSchedule::Rolling {
                windows: 2,
                len: 0.2,
                hop: 0.5,
            },
            Accumulation::Binary,
        )
        .unwrap();
        acc.push(ev(1, 1, Polarity::On, 0.3)).unwrap();
        assert_eq!(acc.events_dropped(), 1);
        let frames = acc.finish();
        assert_eq!(frames.iter().map(|f| f.sum()).sum::<f32>(), 0.0);
    }

    #[test]
    fn empty_stream_still_emits_all_windows() {
        let acc = StreamAccumulator::new(
            8,
            8,
            WindowSchedule::Uniform { time_steps: 5 },
            Accumulation::Binary,
        )
        .unwrap();
        let frames = acc.finish();
        assert_eq!(frames.len(), 5);
        assert!(frames.iter().all(|f| f.sum() == 0.0));
    }

    #[test]
    fn schedule_validation() {
        assert!(WindowSchedule::Uniform { time_steps: 0 }
            .validate()
            .is_err());
        assert!(WindowSchedule::Rolling {
            windows: 0,
            len: 0.1,
            hop: 0.1
        }
        .validate()
        .is_err());
        assert!(WindowSchedule::Rolling {
            windows: 2,
            len: 0.0,
            hop: 0.1
        }
        .validate()
        .is_err());
    }

    #[test]
    fn streaming_aqf_report_is_consistent() {
        let mut f = StreamingAqf::new(16, 16, AqfConfig::default()).unwrap();
        for i in 0..10u16 {
            f.push(ev(
                5 + i % 2,
                5 + i / 5,
                Polarity::On,
                0.1 + i as f32 * 0.002,
            ));
        }
        let r = f.report();
        assert_eq!(
            r.kept_events + r.removed_uncorrelated + r.removed_saturated,
            r.input_events
        );
        assert_eq!(r.input_events, 10);
    }
}
