//! Property-based tests for event streams, frame accumulation and AQF.

use axsnn_neuromorphic::aqf::{approximate_quantized_filter, AqfConfig};
use axsnn_neuromorphic::event::{DvsEvent, EventStream, Polarity};
use axsnn_neuromorphic::frames::{accumulate_frames, rate_image, Accumulation};
use proptest::prelude::*;

const W: usize = 16;
const H: usize = 16;

fn event_strategy() -> impl Strategy<Value = DvsEvent> {
    (
        0u16..W as u16,
        0u16..H as u16,
        proptest::bool::ANY,
        0.0f32..0.999,
    )
        .prop_map(|(x, y, p, t)| {
            DvsEvent::new(x, y, if p { Polarity::On } else { Polarity::Off }, t)
        })
}

fn stream_strategy(max_events: usize) -> impl Strategy<Value = EventStream> {
    proptest::collection::vec(event_strategy(), 0..max_events)
        .prop_map(|events| EventStream::from_events(W, H, events).expect("valid events"))
}

proptest! {
    /// Count-mode accumulation conserves the total number of events.
    #[test]
    fn count_accumulation_conserves_events(stream in stream_strategy(200), t in 1usize..32) {
        let frames = accumulate_frames(&stream, t, Accumulation::Count).unwrap();
        let total: f32 = frames.iter().map(|f| f.sum()).sum();
        prop_assert_eq!(total as usize, stream.len());
    }

    /// Binary-mode accumulation is bounded by count-mode cell-wise.
    #[test]
    fn binary_bounded_by_count(stream in stream_strategy(150), t in 1usize..16) {
        let bin = accumulate_frames(&stream, t, Accumulation::Binary).unwrap();
        let cnt = accumulate_frames(&stream, t, Accumulation::Count).unwrap();
        for (b, c) in bin.iter().zip(&cnt) {
            for (bv, cv) in b.as_slice().iter().zip(c.as_slice()) {
                prop_assert!(bv <= cv);
                prop_assert!(*bv == 0.0 || *bv == 1.0);
            }
        }
    }

    /// Rate images are normalized to [0, 1].
    #[test]
    fn rate_image_normalized(stream in stream_strategy(100)) {
        let img = rate_image(&stream).unwrap();
        prop_assert!(img.min() >= 0.0);
        prop_assert!(img.max() <= 1.0);
    }

    /// AQF never invents events and the report accounting is exact.
    #[test]
    fn aqf_only_removes(stream in stream_strategy(200)) {
        let (kept, report) = approximate_quantized_filter(&stream, &AqfConfig::default()).unwrap();
        prop_assert!(kept.len() <= stream.len());
        prop_assert_eq!(report.input_events, stream.len());
        prop_assert_eq!(
            report.kept_events + report.removed_uncorrelated + report.removed_saturated,
            report.input_events
        );
    }

    /// AQF output timestamps lie on the quantization grid.
    #[test]
    fn aqf_quantizes_timestamps(stream in stream_strategy(100), step_milli in 5u32..50) {
        let step = step_milli as f32 / 1000.0;
        let cfg = AqfConfig { quantization_step: step, ..AqfConfig::default() };
        let (kept, _) = approximate_quantized_filter(&stream, &cfg).unwrap();
        for e in kept.events() {
            let snapped = (e.t / step).round() * step;
            let snapped = snapped.clamp(0.0, 0.999_999);
            prop_assert!((e.t - snapped).abs() < 1e-4, "t {} off grid {}", e.t, snapped);
        }
    }

    /// AQF is stable under re-filtering: a second pass removes at most a
    /// few boundary-condition events, never adds any.
    #[test]
    fn aqf_refilter_shrinks(stream in stream_strategy(150)) {
        let cfg = AqfConfig::default();
        let (once, _) = approximate_quantized_filter(&stream, &cfg).unwrap();
        let (twice, _) = approximate_quantized_filter(&once, &cfg).unwrap();
        prop_assert!(twice.len() <= once.len());
    }

    /// Event pushes reject invalid coordinates for arbitrary geometry.
    #[test]
    fn push_validation(w in 1usize..64, h in 1usize..64, x in 0u16..128, y in 0u16..128) {
        let mut s = EventStream::new(w, h).unwrap();
        let r = s.push(DvsEvent::new(x, y, Polarity::On, 0.5));
        prop_assert_eq!(r.is_ok(), (x as usize) < w && (y as usize) < h);
    }

    /// Boundary count never exceeds the stream length and counts exactly
    /// the events on the border.
    #[test]
    fn boundary_count_consistent(stream in stream_strategy(120)) {
        let manual = stream.events().iter().filter(|e| {
            e.x == 0 || e.y == 0 || e.x as usize == W - 1 || e.y as usize == H - 1
        }).count();
        prop_assert_eq!(stream.boundary_event_count(), manual);
    }
}
