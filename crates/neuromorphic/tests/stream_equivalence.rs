//! Streaming-vs-offline equivalence suite.
//!
//! Pins the tentpole guarantee of the streaming subsystem: streamed
//! classification over a full sample is **bit-identical** to the
//! offline frame-accumulated path for the same window schedule — at
//! every event density, under every plan override, and with int8/f16
//! weight planes installed — plus the causal AQF's relationship to the
//! offline two-pass filter (superset always; exact when no pixel
//! crosses the hot cut).

use axsnn_core::layer::Layer;
use axsnn_core::network::{SnnConfig, SpikingNetwork};
use axsnn_core::plan::{PlanOverride, WeightPlane};
use axsnn_neuromorphic::aqf::{approximate_quantized_filter, AqfConfig};
use axsnn_neuromorphic::event::{DvsEvent, EventStream, Polarity};
use axsnn_neuromorphic::frames::{accumulate_frames, Accumulation};
use axsnn_neuromorphic::stream::{
    classify_event_stream, StreamAccumulator, StreamConfig, StreamSession, StreamingAqf,
    WindowSchedule,
};
use axsnn_neuromorphic::NeuroError;
use axsnn_tensor::conv::Conv2dSpec;
use proptest::prelude::*;
use rand::rngs::mock::StepRng;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const W: usize = 8;
const H: usize = 8;
const T: usize = 6;
const CLASSES: usize = 4;

/// A conv → flatten → linear stack small enough for the suite but deep
/// enough to exercise the full dispatch seam (density-gated sparse
/// conv, sparse matvec, dense readout).
fn network(cfg: SnnConfig) -> SpikingNetwork {
    let mut rng = StdRng::seed_from_u64(33);
    let spec = Conv2dSpec {
        in_channels: 2,
        out_channels: 3,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    SpikingNetwork::new(
        vec![
            Layer::spiking_conv2d(&mut rng, spec, &cfg),
            Layer::flatten(),
            Layer::spiking_linear(&mut rng, 3 * H * W, 16, &cfg),
            Layer::output_linear(&mut rng, 16, CLASSES),
        ],
        cfg,
    )
    .expect("valid network")
}

fn snn_cfg() -> SnnConfig {
    SnnConfig {
        threshold: 0.5,
        time_steps: T,
        leak: 0.9,
    }
}

/// Seeded synthetic gesture-ish stream: a drifting cluster plus
/// background noise, `n` events, time-sorted.
fn synth_stream(seed: u64, n: usize) -> EventStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f32 / n as f32;
        let (x, y) = if rng.gen_bool(0.7) {
            // Cluster drifting across the sensor.
            let cx = (t * (W as f32 - 3.0)) as i64 + 1;
            let cy = (H / 2) as i64;
            (
                (cx + rng.gen_range(-1i64..=1)).clamp(0, W as i64 - 1) as u16,
                (cy + rng.gen_range(-1i64..=1)).clamp(0, H as i64 - 1) as u16,
            )
        } else {
            (rng.gen_range(0..W) as u16, rng.gen_range(0..H) as u16)
        };
        let p = if rng.gen_bool(0.5) {
            Polarity::On
        } else {
            Polarity::Off
        };
        events.push(DvsEvent::new(x, y, p, t.min(0.999_999)));
    }
    EventStream::from_events(W, H, events).expect("valid synthetic events")
}

fn offline_logits(net: &mut SpikingNetwork, stream: &EventStream) -> (Vec<f32>, f32, f64) {
    let frames = accumulate_frames(stream, T, Accumulation::Binary).unwrap();
    let mut rng = StepRng::new(0, 1);
    let out = net.forward(&frames, false, &mut rng).unwrap();
    (
        out.logits.as_slice().to_vec(),
        out.stats.total_spikes(),
        out.stats.synaptic_ops,
    )
}

fn streamed_logits(net: &mut SpikingNetwork, stream: &EventStream) -> (Vec<f32>, f32, f64) {
    let cfg = StreamConfig {
        schedule: WindowSchedule::Uniform { time_steps: T },
        mode: Accumulation::Binary,
        aqf: None,
    };
    let mut rng = StepRng::new(0, 1);
    let outcome = classify_event_stream(net, stream, cfg, &mut rng).unwrap();
    assert_eq!(outcome.windows, T);
    (
        outcome.logits.as_slice().to_vec(),
        outcome.stats.total_spikes(),
        outcome.stats.synaptic_ops,
    )
}

/// Tentpole pin: streamed == offline, bit for bit, across densities
/// and plan overrides.
#[test]
fn streamed_bit_identical_across_densities_and_overrides() {
    // Densities from near-empty (sparse path) to saturating (dense
    // fallback): 5 events up to 4 events/pixel.
    let sizes = [5usize, 40, 160, 256];
    let overrides = [
        PlanOverride::Auto,
        PlanOverride::ForceDense,
        PlanOverride::ForceThreshold(1.0),
    ];
    for (si, &n) in sizes.iter().enumerate() {
        let stream = synth_stream(100 + si as u64, n);
        for ov in overrides {
            let mut net = network(snn_cfg());
            net.apply_plan(ov);
            let offline = offline_logits(&mut net, &stream);
            net.apply_plan(ov);
            let streamed = streamed_logits(&mut net, &stream);
            assert_eq!(
                offline, streamed,
                "diverged at n={n} override={ov:?} (logits/spikes/synops must be bit-identical)"
            );
        }
    }
}

/// Tentpole pin: bit-identity holds with reduced-precision weight
/// planes installed (the quantized storage path).
#[test]
fn streamed_bit_identical_with_weight_planes() {
    let stream = synth_stream(7, 120);
    for plane in [WeightPlane::F16, WeightPlane::Int8] {
        let mut net = network(snn_cfg());
        net.set_weight_plane(plane).unwrap();
        let offline = offline_logits(&mut net, &stream);
        let streamed = streamed_logits(&mut net, &stream);
        assert_eq!(offline, streamed, "diverged with {plane:?} plane");
    }
}

/// The streamed prediction matches `classify_frames` over the same
/// accumulated frames.
#[test]
fn streamed_prediction_matches_offline_classify() {
    let stream = synth_stream(12, 90);
    let mut net = network(snn_cfg());
    let frames = accumulate_frames(&stream, T, Accumulation::Binary).unwrap();
    let mut rng = StepRng::new(0, 1);
    let offline_pred = net.classify_frames(&frames, &mut rng).unwrap();
    let cfg = StreamConfig {
        schedule: WindowSchedule::Uniform { time_steps: T },
        mode: Accumulation::Binary,
        aqf: None,
    };
    let mut rng = StepRng::new(0, 1);
    let outcome = classify_event_stream(&mut net, &stream, cfg, &mut rng).unwrap();
    assert_eq!(outcome.prediction, offline_pred);
    assert_eq!(outcome.events_in, stream.len());
    assert_eq!(outcome.events_kept, stream.len());
}

/// Out-of-order events surface as an explicit session error, not a
/// silently wrong frame.
#[test]
fn out_of_order_events_error_at_session_level() {
    let mut net = network(snn_cfg());
    let cfg = StreamConfig {
        schedule: WindowSchedule::Uniform { time_steps: T },
        mode: Accumulation::Binary,
        aqf: None,
    };
    let mut rng = StepRng::new(0, 1);
    let mut session = StreamSession::begin(&mut net, W, H, cfg).unwrap();
    session
        .push(DvsEvent::new(1, 1, Polarity::On, 0.6), &mut rng)
        .unwrap();
    let err = session
        .push(DvsEvent::new(1, 1, Polarity::On, 0.2), &mut rng)
        .unwrap_err();
    assert!(matches!(err, NeuroError::OutOfOrderEvent { .. }));
}

/// In-stream AQF end-to-end equals offline filter + offline inference
/// when no pixel crosses the hot cut (exactness regime).
#[test]
fn streamed_aqf_bit_identical_without_hot_pixels() {
    // ≤ 8 events per pixel, far below the default cut of 40.
    let stream = synth_stream(21, 200);
    let aqf = AqfConfig::default();

    let mut net = network(snn_cfg());
    let (filtered, offline_report) = approximate_quantized_filter(&stream, &aqf).unwrap();
    let offline = offline_logits(&mut net, &filtered);

    let mut net2 = network(snn_cfg());
    let cfg = StreamConfig {
        schedule: WindowSchedule::Uniform { time_steps: T },
        mode: Accumulation::Binary,
        aqf: Some(aqf),
    };
    let mut rng = StepRng::new(0, 1);
    let outcome = classify_event_stream(&mut net2, &stream, cfg, &mut rng).unwrap();

    let report = outcome.aqf.expect("aqf report present");
    assert_eq!(
        report, offline_report,
        "reports must agree with no hot pixels"
    );
    assert_eq!(
        (
            outcome.logits.as_slice().to_vec(),
            outcome.stats.total_spikes(),
            outcome.stats.synaptic_ops,
        ),
        offline,
        "filtered inference must be bit-identical with no hot pixels"
    );
}

fn offline_rolling_frames(
    stream: &EventStream,
    windows: usize,
    len: f32,
    hop: f32,
    mode: Accumulation,
) -> Vec<Vec<f32>> {
    (0..windows)
        .map(|i| {
            let start = i as f32 * hop;
            let sub: Vec<DvsEvent> = stream
                .events()
                .iter()
                .copied()
                .filter(|e| start <= e.t && e.t < start + len)
                .collect();
            let sub = EventStream::from_events(W, H, sub).unwrap();
            accumulate_frames(&sub, 1, mode).unwrap()[0]
                .as_slice()
                .to_vec()
        })
        .collect()
}

fn event_strategy() -> impl Strategy<Value = DvsEvent> {
    (
        0u16..W as u16,
        0u16..H as u16,
        proptest::bool::ANY,
        0.0f32..0.999,
    )
        .prop_map(|(x, y, p, t)| {
            DvsEvent::new(x, y, if p { Polarity::On } else { Polarity::Off }, t)
        })
}

fn sorted_events(max: usize) -> impl Strategy<Value = Vec<DvsEvent>> {
    proptest::collection::vec(event_strategy(), 0..max).prop_map(|mut v| {
        v.sort_by(|a, b| a.t.partial_cmp(&b.t).unwrap());
        v
    })
}

proptest! {
    /// The streamed uniform accumulator is bit-identical to
    /// `accumulate_frames` for arbitrary streams, bin counts and modes
    /// (including empty bins).
    #[test]
    fn uniform_accumulator_matches_offline(
        events in sorted_events(150),
        t in 1usize..24,
        count_mode in proptest::bool::ANY,
    ) {
        let mode = if count_mode { Accumulation::Count } else { Accumulation::Binary };
        let stream = EventStream::from_events(W, H, events.clone()).unwrap();
        let offline = accumulate_frames(&stream, t, mode).unwrap();
        let mut acc = StreamAccumulator::new(
            W, H, WindowSchedule::Uniform { time_steps: t }, mode,
        ).unwrap();
        let mut streamed = Vec::new();
        for e in &events {
            streamed.extend(acc.push(*e).unwrap());
        }
        streamed.extend(acc.finish());
        prop_assert_eq!(streamed.len(), offline.len());
        for (a, b) in streamed.iter().zip(&offline) {
            prop_assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    /// The rolling accumulator matches per-window offline accumulation
    /// across window counts, lengths and hops (overlapping and gapped),
    /// and accounts for every event it drops.
    #[test]
    fn rolling_accumulator_matches_offline(
        events in sorted_events(120),
        windows in 1usize..10,
        len_milli in 20u32..400,
        hop_milli in 20u32..400,
        count_mode in proptest::bool::ANY,
    ) {
        let (len, hop) = (len_milli as f32 / 1000.0, hop_milli as f32 / 1000.0);
        let mode = if count_mode { Accumulation::Count } else { Accumulation::Binary };
        let stream = EventStream::from_events(W, H, events.clone()).unwrap();
        let offline = offline_rolling_frames(&stream, windows, len, hop, mode);
        let mut acc = StreamAccumulator::new(
            W, H, WindowSchedule::Rolling { windows, len, hop }, mode,
        ).unwrap();
        let mut streamed = Vec::new();
        for e in &events {
            streamed.extend(acc.push(*e).unwrap());
        }
        let dropped = acc.events_dropped();
        streamed.extend(acc.finish());
        prop_assert_eq!(streamed.len(), windows);
        for (a, b) in streamed.iter().zip(&offline) {
            prop_assert_eq!(a.as_slice(), b.as_slice());
        }
        let covered = events.iter().filter(|e| {
            (0..windows).any(|i| {
                let s = i as f32 * hop;
                s <= e.t && e.t < s + len
            })
        }).count();
        prop_assert_eq!(dropped, events.len() - covered);
    }

    /// Any unsorted stream with a genuine inversion is rejected with
    /// the explicit out-of-order error at the first offending event.
    #[test]
    fn out_of_order_rejected(events in proptest::collection::vec(event_strategy(), 2..60)) {
        let mut acc = StreamAccumulator::new(
            W, H, WindowSchedule::Uniform { time_steps: 4 }, Accumulation::Binary,
        ).unwrap();
        let mut last = f32::NEG_INFINITY;
        for e in &events {
            let r = acc.push(*e);
            if e.t >= last {
                prop_assert!(r.is_ok());
                last = e.t;
            } else {
                prop_assert!(matches!(r.unwrap_err(), NeuroError::OutOfOrderEvent { .. }));
                break;
            }
        }
    }

    /// Causal-AQF superset property: every event the streaming filter
    /// keeps includes all events the offline filter keeps
    /// (`kept_streaming ⊇ kept_offline`), on arbitrary streams —
    /// including ones with hot pixels.
    #[test]
    fn streaming_aqf_keeps_superset_of_offline(events in sorted_events(200)) {
        let cfg = AqfConfig::default();
        let stream = EventStream::from_events(W, H, events.clone()).unwrap();
        let (offline_kept, _) = approximate_quantized_filter(&stream, &cfg).unwrap();
        let mut filter = StreamingAqf::new(W, H, cfg).unwrap();
        let streaming_kept: Vec<DvsEvent> =
            events.iter().filter_map(|e| filter.push(*e)).collect();
        // Multiset containment over (x, y, channel, quantized-t bits).
        let key = |e: &DvsEvent| (e.x, e.y, e.polarity.channel(), e.t.to_bits());
        let mut pool: Vec<_> = streaming_kept.iter().map(key).collect();
        for e in offline_kept.events() {
            let k = key(e);
            let pos = pool.iter().position(|p| *p == k);
            prop_assert!(pos.is_some(), "offline kept {e:?} but streaming dropped it");
            pool.swap_remove(pos.unwrap());
        }
    }

    /// Causal-AQF exactness: when no pixel crosses the hot cut, the
    /// streaming filter keeps the identical event sequence (same order,
    /// same quantized timestamps) and produces the identical report.
    #[test]
    fn streaming_aqf_exact_without_hot_pixels(events in sorted_events(150)) {
        let cfg = AqfConfig::default();
        let cut = (cfg.activity_threshold * cfg.saturation_persistence) as usize;
        // Thin the stream so no pixel exceeds the cut.
        let mut per_pixel = vec![0usize; W * H];
        let thinned: Vec<DvsEvent> = events
            .into_iter()
            .filter(|e| {
                let i = e.y as usize * W + e.x as usize;
                per_pixel[i] += 1;
                per_pixel[i] <= cut
            })
            .collect();
        let stream = EventStream::from_events(W, H, thinned.clone()).unwrap();
        let (offline_kept, offline_report) =
            approximate_quantized_filter(&stream, &cfg).unwrap();
        let mut filter = StreamingAqf::new(W, H, cfg).unwrap();
        let streaming_kept: Vec<DvsEvent> =
            thinned.iter().filter_map(|e| filter.push(*e)).collect();
        prop_assert_eq!(filter.report(), offline_report);
        prop_assert_eq!(streaming_kept.len(), offline_kept.len());
        for (a, b) in streaming_kept.iter().zip(offline_kept.events()) {
            prop_assert_eq!(a.t.to_bits(), b.t.to_bits());
            prop_assert!(a.x == b.x && a.y == b.y && a.polarity == b.polarity);
        }
    }
}
