//! Service configuration: admission, batching window, degradation
//! ladder thresholds and hot-swap validation policy.

use crate::error::{Result, ServeError};
use axsnn_core::encoding::Encoder;
use axsnn_core::plan::{PlanOverride, WeightPlane};
use std::time::Duration;

/// Request priority class. Under overload the degradation ladder sheds
/// the lowest class first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Best-effort work, first to be shed.
    Low,
    /// Default class.
    Normal,
    /// Latency-sensitive work, never shed by the ladder (still subject
    /// to queue-full backpressure and its own deadline).
    High,
}

/// The degradation ladder's service levels, ordered from healthy to
/// most degraded. Transitions are driven by measured queue occupancy
/// with hysteresis (see [`DegradeConfig`]):
///
/// 1. [`ServiceLevel::Full`] — full batching window, the model's own
///    execution plan.
/// 2. [`ServiceLevel::ShrunkWindow`] — batching window shrunk so
///    requests stop accumulating coalescing latency.
/// 3. [`ServiceLevel::DegradedPlan`] — additionally execute under the
///    configured cheaper [`PlanOverride`] (prediction-preserving by the
///    plan-equivalence guarantee) and, when configured, a reduced
///    time-step count and/or a reduced-precision weight plane (genuine
///    precision-for-latency trades).
/// 4. [`ServiceLevel::Shedding`] — additionally reject
///    [`Priority::Low`] work at admission and drop it at dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServiceLevel {
    /// Healthy: full window, native plan.
    Full,
    /// Queue building: shrink the batching window.
    ShrunkWindow,
    /// Queue high: also switch to the degraded execution plan.
    DegradedPlan,
    /// Queue near capacity: also shed low-priority work.
    Shedding,
}

impl ServiceLevel {
    /// All levels, healthy to most degraded.
    pub const ALL: [ServiceLevel; 4] = [
        ServiceLevel::Full,
        ServiceLevel::ShrunkWindow,
        ServiceLevel::DegradedPlan,
        ServiceLevel::Shedding,
    ];

    /// Index into [`ServiceLevel::ALL`] (0 = healthy).
    pub fn index(self) -> usize {
        match self {
            ServiceLevel::Full => 0,
            ServiceLevel::ShrunkWindow => 1,
            ServiceLevel::DegradedPlan => 2,
            ServiceLevel::Shedding => 3,
        }
    }
}

/// Degradation-ladder tuning. Occupancy is `queue depth / capacity` in
/// `[0, 1]`; a level is entered the moment occupancy reaches its
/// threshold (escalation is immediate — overload must never wait), and
/// left only after `recovery_dwell` consecutive dispatch observations
/// below the threshold minus `hysteresis_margin` (recovery is damped so
/// the ladder does not flap at a threshold boundary).
#[derive(Debug, Clone)]
pub struct DegradeConfig {
    /// Occupancy at which the batching window shrinks.
    pub shrink_at: f64,
    /// Occupancy at which the degraded plan engages.
    pub degrade_at: f64,
    /// Occupancy at which low-priority shedding engages.
    pub shed_at: f64,
    /// Occupancy slack required below a threshold before recovery
    /// counts toward the dwell.
    pub hysteresis_margin: f64,
    /// Consecutive below-threshold observations required to step back
    /// toward [`ServiceLevel::Full`].
    pub recovery_dwell: u32,
    /// Window divisor applied from [`ServiceLevel::ShrunkWindow`] up.
    pub window_shrink_divisor: u32,
    /// The cheaper plan installed at [`ServiceLevel::DegradedPlan`].
    /// `PlanOverride::ForceDense` (the default) is prediction-preserving,
    /// keeping served outputs bit-identical to the healthy path.
    pub degraded_plan: PlanOverride,
    /// Optional reduced time-step count at
    /// [`ServiceLevel::DegradedPlan`] — the paper's approximation axis
    /// as a latency valve. `None` (default) keeps the encode length and
    /// with it bit-identical predictions.
    pub degraded_time_steps: Option<usize>,
    /// Optional reduced-precision weight plane installed at
    /// [`ServiceLevel::DegradedPlan`] — drops weight storage to f16 or
    /// int8 so the gather-bound kernels stream fewer bytes under load.
    /// Like `degraded_time_steps` this trades precision for latency;
    /// `None` (default) keeps f32 weights and bit-identical predictions.
    pub degraded_weight_plane: Option<WeightPlane>,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            shrink_at: 0.45,
            degrade_at: 0.70,
            shed_at: 0.90,
            hysteresis_margin: 0.10,
            recovery_dwell: 3,
            window_shrink_divisor: 4,
            degraded_plan: PlanOverride::ForceDense,
            degraded_time_steps: None,
            degraded_weight_plane: None,
        }
    }
}

impl DegradeConfig {
    /// Validates threshold ordering and ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] when thresholds are out of
    /// `[0, 1]`, unordered, or the divisor/dwell are zero.
    pub fn validate(&self) -> Result<()> {
        let bad = |message: String| Err(ServeError::Config { message });
        for (name, v) in [
            ("shrink_at", self.shrink_at),
            ("degrade_at", self.degrade_at),
            ("shed_at", self.shed_at),
            ("hysteresis_margin", self.hysteresis_margin),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return bad(format!("{name} must be in [0, 1], got {v}"));
            }
        }
        if !(self.shrink_at <= self.degrade_at && self.degrade_at <= self.shed_at) {
            return bad(format!(
                "ladder thresholds must be ordered: shrink {} <= degrade {} <= shed {}",
                self.shrink_at, self.degrade_at, self.shed_at
            ));
        }
        if self.window_shrink_divisor == 0 {
            return bad("window_shrink_divisor must be >= 1".into());
        }
        if self.recovery_dwell == 0 {
            return bad("recovery_dwell must be >= 1".into());
        }
        if self.degraded_time_steps == Some(0) {
            return bad("degraded_time_steps must be >= 1".into());
        }
        if self.degraded_weight_plane == Some(WeightPlane::F32) {
            return bad("degraded_weight_plane f32 is the healthy plane; use None".into());
        }
        Ok(())
    }
}

/// Full service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing fused batches.
    pub workers: usize,
    /// Bounded admission-queue capacity; submissions beyond it observe
    /// [`ServeError::QueueFull`] backpressure.
    pub queue_capacity: usize,
    /// How long a worker holds its first request open for coalescing
    /// before executing the batch.
    pub batch_window: Duration,
    /// Largest fused batch a worker will assemble.
    pub max_batch: usize,
    /// Spike encoder requests are encoded with.
    pub encoder: Encoder,
    /// Degradation-ladder tuning.
    pub degrade: DegradeConfig,
    /// Seed for the hot-swap smoke probe's encoder stream.
    pub probe_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            batch_window: Duration::from_millis(2),
            max_batch: 32,
            encoder: Encoder::Deterministic,
            degrade: DegradeConfig::default(),
            probe_seed: 0xA55_5EED,
        }
    }
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for zero workers/capacity/batch
    /// or an invalid [`DegradeConfig`].
    pub fn validate(&self) -> Result<()> {
        let bad = |message: String| Err(ServeError::Config { message });
        if self.workers == 0 {
            return bad("workers must be >= 1".into());
        }
        if self.queue_capacity == 0 {
            return bad("queue_capacity must be >= 1".into());
        }
        if self.max_batch == 0 {
            return bad("max_batch must be >= 1".into());
        }
        self.degrade.validate()
    }

    /// The effective coalescing window at `level`.
    pub fn window_at(&self, level: ServiceLevel) -> Duration {
        if level >= ServiceLevel::ShrunkWindow {
            self.batch_window / self.degrade.window_shrink_divisor
        } else {
            self.batch_window
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ServeConfig::default().validate().unwrap();
    }

    #[test]
    fn bad_configs_rejected() {
        let c = ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ServeConfig {
            queue_capacity: 0,
            ..ServeConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ServeConfig {
            max_batch: 0,
            ..ServeConfig::default()
        };
        assert!(c.validate().is_err());
        let mut c = ServeConfig::default();
        c.degrade.shed_at = 0.2; // below degrade_at: unordered
        assert!(c.validate().is_err());
        let mut c = ServeConfig::default();
        c.degrade.shrink_at = 1.5;
        assert!(c.validate().is_err());
        let mut c = ServeConfig::default();
        c.degrade.window_shrink_divisor = 0;
        assert!(c.validate().is_err());
        let mut c = ServeConfig::default();
        c.degrade.recovery_dwell = 0;
        assert!(c.validate().is_err());
        let mut c = ServeConfig::default();
        c.degrade.degraded_time_steps = Some(0);
        assert!(c.validate().is_err());
        let mut c = ServeConfig::default();
        c.degrade.degraded_weight_plane = Some(WeightPlane::F32);
        assert!(c.validate().is_err());
        let mut c = ServeConfig::default();
        c.degrade.degraded_weight_plane = Some(WeightPlane::Int8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn levels_are_ordered_and_indexed() {
        for w in ServiceLevel::ALL.windows(2) {
            assert!(w[0] < w[1]);
            assert_eq!(w[0].index() + 1, w[1].index());
        }
    }

    #[test]
    fn window_shrinks_from_shrunk_level_up() {
        let c = ServeConfig::default();
        assert_eq!(c.window_at(ServiceLevel::Full), c.batch_window);
        for level in [
            ServiceLevel::ShrunkWindow,
            ServiceLevel::DegradedPlan,
            ServiceLevel::Shedding,
        ] {
            assert_eq!(c.window_at(level), c.batch_window / 4);
        }
    }

    #[test]
    fn priority_orders() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
    }
}
