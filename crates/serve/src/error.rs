use axsnn_core::CoreError;
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Error type for the inference service.
///
/// Every rejected or failed request observes exactly one of these — the
/// service never leaves a submitted request unanswered (the zero-hangs
/// invariant the robustness bench enforces).
///
/// # Example
///
/// ```
/// use axsnn_serve::ServeError;
///
/// let e = ServeError::QueueFull { depth: 64, capacity: 64 };
/// assert!(e.to_string().contains("backpressure"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The bounded admission queue is at capacity — backpressure. The
    /// caller should retry later or slow its submission rate.
    QueueFull {
        /// Requests currently queued.
        depth: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The request was shed by the degradation ladder: the service is
    /// in its shedding level and the request's priority is below the
    /// admission floor.
    Shed {
        /// The shed request's priority (as [`crate::Priority`] debug text).
        priority: String,
    },
    /// The request's deadline expired while it waited in the queue, so
    /// it was dropped *before* execution — late work is never run.
    DeadlineExpired {
        /// How long the request had waited when it was dropped.
        waited: Duration,
    },
    /// The worker executing this request panicked, and the panic was
    /// pinned to this request by the isolation retry (the rest of its
    /// batch was re-run without it).
    WorkerPanicked {
        /// The panic payload, when it was a string.
        payload: String,
    },
    /// A hot-swap candidate model failed validation and was rolled
    /// back; the previous model keeps serving.
    SwapRejected {
        /// Why the candidate was rejected.
        reason: String,
    },
    /// The request is malformed (e.g. its image shape does not match
    /// the served model's input).
    InvalidRequest {
        /// Description of the problem.
        message: String,
    },
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// The service configuration is invalid.
    Config {
        /// Description of the violated precondition.
        message: String,
    },
    /// An underlying model operation failed.
    Core(CoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { depth, capacity } => write!(
                f,
                "admission queue full ({depth}/{capacity}): backpressure, retry later"
            ),
            ServeError::Shed { priority } => {
                write!(f, "request shed under overload (priority {priority})")
            }
            ServeError::DeadlineExpired { waited } => {
                write!(f, "deadline expired after waiting {waited:?}")
            }
            ServeError::WorkerPanicked { payload } => {
                write!(f, "worker panicked serving this request: {payload}")
            }
            ServeError::SwapRejected { reason } => {
                write!(f, "model swap rejected (rolled back): {reason}")
            }
            ServeError::InvalidRequest { message } => write!(f, "invalid request: {message}"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Config { message } => write!(f, "invalid service config: {message}"),
            ServeError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl axsnn_core::FromWorkerPanic for ServeError {
    fn from_worker_panic(payload: String) -> Self {
        ServeError::WorkerPanicked { payload }
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(ServeError, &str)> = vec![
            (
                ServeError::QueueFull {
                    depth: 8,
                    capacity: 8,
                },
                "backpressure",
            ),
            (
                ServeError::Shed {
                    priority: "Low".into(),
                },
                "shed",
            ),
            (
                ServeError::DeadlineExpired {
                    waited: Duration::from_millis(5),
                },
                "deadline",
            ),
            (
                ServeError::WorkerPanicked {
                    payload: "boom".into(),
                },
                "boom",
            ),
            (
                ServeError::SwapRejected {
                    reason: "NaN".into(),
                },
                "rolled back",
            ),
            (ServeError::ShuttingDown, "shutting down"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn from_worker_panic_maps() {
        use axsnn_core::FromWorkerPanic;
        let e = ServeError::from_worker_panic("p".into());
        assert_eq!(
            e,
            ServeError::WorkerPanicked {
                payload: "p".into()
            }
        );
    }
}
