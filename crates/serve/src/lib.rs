//! Fault-tolerant micro-batching inference service for AxSNN models.
//!
//! Production serving for the paper's approximate spiking networks:
//! concurrent classification requests are coalesced into fused shards
//! (executed through the batch engine's ExecPlan-selected kernels) by a
//! pool of worker threads behind a bounded admission queue. The service
//! stays correct and responsive under overload and faults:
//!
//! * [`server`] — the service itself: bounded admission with
//!   backpressure, deadline-aware load shedding, per-batch panic
//!   isolation with worker respawn, a queue-depth-driven degradation
//!   ladder ([`ServiceLevel`]) with hysteresis, and validated hot swap
//!   of model snapshots.
//! * [`config`] — tuning knobs: [`ServeConfig`], the ladder's
//!   [`DegradeConfig`], request [`Priority`].
//! * [`metrics`] — lock-free counters plus latency percentiles.
//! * [`traffic`] — open-loop Poisson traffic with burst and fault
//!   phases for tests and the `bench_serve` robustness benchmark.
//!
//! Served predictions are bit-identical to the direct
//! [`classify_batch_fused`](axsnn_core::network::SpikingNetwork::classify_batch_fused)
//! / [`classify`](axsnn_core::network::SpikingNetwork::classify) paths
//! for the same per-request seed, for *any* interleaving of concurrent
//! requests, batch composition or window size — micro-batching is a
//! scheduling optimization, never a semantic one. The
//! `serve_equivalence` suite pins this.
//!
//! # Provenance
//!
//! The service landed in PR 7; PR 8 added the
//! [`DegradeConfig::degraded_weight_plane`] rung (reduced-precision
//! weight storage under load, still bit-identical to the direct
//! planed path). The `serve_equivalence` suite in `tests/` pins
//! served-vs-direct bit-identity, the zero-hang invariant and the
//! degradation ladder's semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
mod error;
pub mod metrics;
pub mod server;
pub mod traffic;

pub use config::{DegradeConfig, Priority, ServeConfig, ServiceLevel};
pub use error::{Result, ServeError};
pub use metrics::MetricsSnapshot;
pub use server::{InferenceService, Request, Response, Ticket};
pub use traffic::{run_open_loop, TrafficConfig, TrafficPhase, TrafficReport};
