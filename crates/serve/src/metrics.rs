//! Service counters and latency accounting.
//!
//! All counters are lock-free atomics so workers never contend on
//! bookkeeping; latencies go through a small mutex-guarded recorder
//! (appended once per completed request).

use crate::config::ServiceLevel;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Live counters for a running service. Obtain a consistent copy with
/// [`ServeMetrics::snapshot`].
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests accepted into the queue.
    pub submitted: AtomicU64,
    /// Requests answered with a prediction.
    pub completed: AtomicU64,
    /// Submissions rejected by queue-full backpressure.
    pub rejected_full: AtomicU64,
    /// Requests shed for priority under the shedding level.
    pub shed_priority: AtomicU64,
    /// Requests dropped because their deadline expired pre-execution.
    pub expired: AtomicU64,
    /// Batch executions that panicked.
    pub batch_panics: AtomicU64,
    /// Worker state rebuilds after a panic (fresh model clone).
    pub worker_respawns: AtomicU64,
    /// Requests retried individually after a batch panic.
    pub isolation_retries: AtomicU64,
    /// Requests that failed with a pinned worker panic.
    pub poisoned_failed: AtomicU64,
    /// Fused batches executed.
    pub batches: AtomicU64,
    /// Requests served through fused batches (sum of batch sizes).
    pub batched_requests: AtomicU64,
    /// Successful hot swaps.
    pub swaps: AtomicU64,
    /// Hot-swap candidates rejected and rolled back.
    pub swap_rollbacks: AtomicU64,
    /// Degradation-ladder transitions, counted per target level
    /// (indexed by [`ServiceLevel::index`]).
    pub level_entries: [AtomicU64; 4],
    /// Largest queue depth observed at dispatch.
    pub max_queue_depth: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

impl ServeMetrics {
    /// Records one end-to-end (submit → response) latency.
    pub fn record_latency(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.latencies_us.lock().expect("metrics lock").push(us);
    }

    /// Records a ladder transition into `level`.
    pub fn record_level_entry(&self, level: ServiceLevel) {
        self.level_entries[level.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Raises the observed max queue depth to at least `depth`.
    pub fn observe_queue_depth(&self, depth: usize) {
        self.max_queue_depth
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// A consistent point-in-time copy of every counter plus latency
    /// percentiles.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let lat = self.latencies_us.lock().expect("metrics lock").clone();
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            shed_priority: self.shed_priority.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            batch_panics: self.batch_panics.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            isolation_retries: self.isolation_retries.load(Ordering::Relaxed),
            poisoned_failed: self.poisoned_failed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            swap_rollbacks: self.swap_rollbacks.load(Ordering::Relaxed),
            level_entries: [
                self.level_entries[0].load(Ordering::Relaxed),
                self.level_entries[1].load(Ordering::Relaxed),
                self.level_entries[2].load(Ordering::Relaxed),
                self.level_entries[3].load(Ordering::Relaxed),
            ],
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            p50_latency_us: percentile_us(&lat, 50.0),
            p99_latency_us: percentile_us(&lat, 99.0),
            latency_samples: lat.len() as u64,
        }
    }
}

/// Point-in-time copy of [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Submissions rejected by queue-full backpressure.
    pub rejected_full: u64,
    /// Requests shed for priority under the shedding level.
    pub shed_priority: u64,
    /// Requests dropped on an expired deadline, pre-execution.
    pub expired: u64,
    /// Batch executions that panicked.
    pub batch_panics: u64,
    /// Worker state rebuilds after a panic.
    pub worker_respawns: u64,
    /// Requests retried individually after a batch panic.
    pub isolation_retries: u64,
    /// Requests failed with a pinned worker panic.
    pub poisoned_failed: u64,
    /// Fused batches executed.
    pub batches: u64,
    /// Requests served through fused batches.
    pub batched_requests: u64,
    /// Successful hot swaps.
    pub swaps: u64,
    /// Rejected, rolled-back hot swaps.
    pub swap_rollbacks: u64,
    /// Ladder transitions per target level.
    pub level_entries: [u64; 4],
    /// Largest queue depth observed at dispatch.
    pub max_queue_depth: u64,
    /// Median end-to-end latency, microseconds.
    pub p50_latency_us: u64,
    /// 99th-percentile end-to-end latency, microseconds.
    pub p99_latency_us: u64,
    /// Latency samples recorded.
    pub latency_samples: u64,
}

impl MetricsSnapshot {
    /// Mean fused-batch size, 0.0 before any batch ran.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Total degradation-ladder transitions.
    pub fn total_transitions(&self) -> u64 {
        self.level_entries.iter().sum()
    }
}

/// Nearest-rank percentile of raw microsecond samples (`p` in
/// `[0, 100]`). Returns 0 for an empty set.
pub fn percentile_us(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_edges() {
        assert_eq!(percentile_us(&[], 99.0), 0);
        assert_eq!(percentile_us(&[7], 50.0), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&v, 50.0), 50);
        assert_eq!(percentile_us(&v, 99.0), 99);
        assert_eq!(percentile_us(&v, 100.0), 100);
    }

    #[test]
    fn snapshot_reflects_counters() {
        let m = ServeMetrics::default();
        m.submitted.fetch_add(3, Ordering::Relaxed);
        m.completed.fetch_add(2, Ordering::Relaxed);
        m.batches.fetch_add(1, Ordering::Relaxed);
        m.batched_requests.fetch_add(2, Ordering::Relaxed);
        m.record_latency(Duration::from_micros(40));
        m.record_latency(Duration::from_micros(60));
        m.record_level_entry(ServiceLevel::Shedding);
        m.observe_queue_depth(5);
        m.observe_queue_depth(3);
        let s = m.snapshot();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.completed, 2);
        assert_eq!(s.mean_batch_size(), 2.0);
        assert_eq!(s.level_entries[ServiceLevel::Shedding.index()], 1);
        assert_eq!(s.total_transitions(), 1);
        assert_eq!(s.max_queue_depth, 5);
        assert_eq!(s.p50_latency_us, 40);
        assert_eq!(s.p99_latency_us, 60);
        assert_eq!(s.latency_samples, 2);
    }
}
