//! The micro-batching inference service.
//!
//! Concurrent [`Request`]s enter a bounded admission queue; worker
//! threads coalesce them into fused shards (up to a batching window /
//! batch cap) and execute them through the network's
//! [`classify_batch_fused`](SpikingNetwork::classify_batch_fused)
//! engine under its [`axsnn_core::plan::ExecPlan`]-selected kernels.
//!
//! Robustness properties, each pinned by the `serve_equivalence` suite:
//!
//! * **Backpressure** — submissions beyond the queue capacity observe
//!   [`ServeError::QueueFull`] instead of growing memory.
//! * **Deadlines** — a request whose deadline expires while queued is
//!   dropped *before* execution and answered with
//!   [`ServeError::DeadlineExpired`]; late work is never run.
//! * **Panic isolation** — a batch execution that panics is caught
//!   ([`std::panic::catch_unwind`]), the worker's model state is
//!   rebuilt from the shared snapshot (a respawn), and the batch's
//!   requests are retried once individually so a poisoned request
//!   fails alone with [`ServeError::WorkerPanicked`] while its batch
//!   mates still get answers.
//! * **Graceful degradation** — measured queue occupancy drives the
//!   [`ServiceLevel`] ladder (shrink window → cheaper plan → shed
//!   low-priority), escalating immediately and recovering one rung at
//!   a time behind a hysteresis dwell.
//! * **Validated hot swap** — [`InferenceService::swap_model`] smoke-
//!   classifies the candidate against the pinned probe before an
//!   atomic generation bump; a failing candidate is rolled back and the
//!   previous model keeps serving.
//!
//! Per-request encoding seeds make served predictions independent of
//! batch composition: every row of a fused batch is bit-identical to a
//! direct [`SpikingNetwork::classify`] with the same seed (the fused
//! engine's row-equivalence guarantee).

use crate::config::{Priority, ServeConfig, ServiceLevel};
use crate::error::{Result, ServeError};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use axsnn_core::batch::panic_payload;
use axsnn_core::fused::FrameTrain;
use axsnn_core::io::load_network;
use axsnn_core::network::SpikingNetwork;
use axsnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One classification request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Input image; shape must match the served model's input.
    pub image: Tensor,
    /// Per-request encoding seed. Served predictions are a pure
    /// function of `(model, image, seed)` — batch composition never
    /// leaks in.
    pub seed: u64,
    /// Priority class for overload shedding.
    pub priority: Priority,
    /// Optional deadline relative to submission; expired work is
    /// dropped before execution.
    pub deadline: Option<Duration>,
    /// Fault-injection hook: a poisoned request panics the worker that
    /// executes it (the isolation tests' and robustness bench's
    /// chaos source). Never set in production traffic.
    pub poison: bool,
}

impl Request {
    /// A normal-priority request with no deadline.
    pub fn new(image: Tensor, seed: u64) -> Self {
        Request {
            image,
            seed,
            priority: Priority::Normal,
            deadline: None,
            poison: false,
        }
    }

    /// Sets the priority class.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets a deadline relative to submission.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Marks the request as a panic-injecting poison pill (tests only).
    #[must_use]
    pub fn poisoned(mut self) -> Self {
        self.poison = true;
        self
    }
}

/// A served prediction plus service-side context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Predicted class index.
    pub prediction: usize,
    /// Time the request waited in the queue before dispatch.
    pub queue_wait: Duration,
    /// Size of the fused batch that served it (1 for isolation
    /// retries).
    pub batch_size: usize,
    /// Service level at dispatch.
    pub level: ServiceLevel,
    /// Model generation that produced the prediction.
    pub generation: u64,
    /// `true` when this answer came from the post-panic individual
    /// retry pass.
    pub retried: bool,
}

/// Handle to one in-flight request. The service answers every accepted
/// ticket exactly once — success or a typed [`ServeError`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response>>,
}

impl Ticket {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// Propagates the service-side [`ServeError`];
    /// [`ServeError::ShuttingDown`] if the service dropped without
    /// answering (cannot happen through the public API).
    pub fn wait(self) -> Result<Response> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Blocks up to `timeout`; `None` when the response has not
    /// arrived yet.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Response>> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

/// An accepted request waiting in the admission queue.
struct Pending {
    image: Tensor,
    seed: u64,
    priority: Priority,
    poison: bool,
    submitted: Instant,
    expires: Option<Instant>,
    tx: mpsc::Sender<Result<Response>>,
}

/// The served model at one generation. Immutable once installed;
/// workers clone the network out of it.
struct ModelState {
    net: SpikingNetwork,
    generation: u64,
    input_dims: Vec<usize>,
    time_steps: usize,
}

struct QueueState {
    queue: VecDeque<Pending>,
    closed: bool,
}

struct LadderState {
    level: ServiceLevel,
    below_streak: u32,
}

struct Shared {
    config: ServeConfig,
    metrics: ServeMetrics,
    queue: Mutex<QueueState>,
    available: Condvar,
    model: Mutex<Arc<ModelState>>,
    model_gen: AtomicU64,
    ladder: Mutex<LadderState>,
    level_idx: AtomicU64,
    probe: Tensor,
}

impl Shared {
    fn current_level(&self) -> ServiceLevel {
        ServiceLevel::ALL[self.level_idx.load(Ordering::Relaxed) as usize]
    }

    /// Folds one queue-occupancy observation into the ladder:
    /// escalation is immediate, recovery steps one rung at a time after
    /// `recovery_dwell` consecutive observations with
    /// `hysteresis_margin` slack below the current rung's threshold.
    fn observe_occupancy(&self, depth: usize) -> ServiceLevel {
        let d = &self.config.degrade;
        let occ = depth as f64 / self.config.queue_capacity as f64;
        let target = if occ >= d.shed_at {
            ServiceLevel::Shedding
        } else if occ >= d.degrade_at {
            ServiceLevel::DegradedPlan
        } else if occ >= d.shrink_at {
            ServiceLevel::ShrunkWindow
        } else {
            ServiceLevel::Full
        };
        let mut ladder = self.ladder.lock().expect("ladder lock");
        if target > ladder.level {
            ladder.level = target;
            ladder.below_streak = 0;
            self.metrics.record_level_entry(target);
            self.level_idx
                .store(target.index() as u64, Ordering::Relaxed);
        } else if target < ladder.level {
            let entry_threshold = match ladder.level {
                ServiceLevel::Full => 0.0,
                ServiceLevel::ShrunkWindow => d.shrink_at,
                ServiceLevel::DegradedPlan => d.degrade_at,
                ServiceLevel::Shedding => d.shed_at,
            };
            if occ <= entry_threshold - d.hysteresis_margin {
                ladder.below_streak += 1;
            } else {
                ladder.below_streak = 0;
            }
            if ladder.below_streak >= d.recovery_dwell {
                let down = ServiceLevel::ALL[ladder.level.index() - 1];
                ladder.level = down;
                ladder.below_streak = 0;
                self.metrics.record_level_entry(down);
                self.level_idx.store(down.index() as u64, Ordering::Relaxed);
            }
        } else {
            ladder.below_streak = 0;
        }
        ladder.level
    }
}

/// Validates a candidate model against the pinned probe: inference
/// mode, finite smoke classification, non-empty stack. Returns the
/// ready-to-install state (generation assigned by the caller).
fn validate_model(
    mut net: SpikingNetwork,
    probe: &Tensor,
    encoder: axsnn_core::encoding::Encoder,
    probe_seed: u64,
) -> Result<(SpikingNetwork, Vec<usize>, usize)> {
    let reject = |reason: String| Err(ServeError::SwapRejected { reason });
    if net.depth() == 0 {
        return reject("empty layer stack".into());
    }
    net.set_train_mode(false);
    let time_steps = net.config().time_steps;
    if time_steps == 0 {
        return reject("zero time steps".into());
    }
    // Smoke-classify a clone so the install candidate keeps pristine
    // state. A shape-incompatible or numerically broken model fails
    // here, before it can ever serve traffic.
    let mut smoke = net.clone();
    let mut rng = StdRng::seed_from_u64(probe_seed);
    match catch_unwind(AssertUnwindSafe(|| {
        smoke.classify(probe, encoder, &mut rng)
    })) {
        Ok(Ok(_prediction)) => {}
        Ok(Err(e)) => return reject(format!("probe classification failed: {e}")),
        Err(p) => {
            return reject(format!(
                "probe classification panicked: {}",
                panic_payload(p.as_ref())
            ))
        }
    }
    let dims = probe.shape().dims().to_vec();
    Ok((net, dims, time_steps))
}

/// The fault-tolerant micro-batching inference service. See the
/// [module docs](self) for the full property list.
///
/// # Example
///
/// ```
/// use axsnn_core::layer::Layer;
/// use axsnn_core::network::{SnnConfig, SpikingNetwork};
/// use axsnn_serve::{InferenceService, Request, ServeConfig};
/// use axsnn_tensor::Tensor;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let cfg = SnnConfig { threshold: 1.0, time_steps: 6, leak: 0.9 };
/// let net = SpikingNetwork::new(
///     vec![
///         Layer::spiking_linear(&mut rng, 4, 8, &cfg),
///         Layer::output_linear(&mut rng, 8, 3),
///     ],
///     cfg,
/// )?;
/// let probe = Tensor::full(&[4], 0.5);
/// let service = InferenceService::start(net, probe, ServeConfig::default())?;
/// let ticket = service.submit(Request::new(Tensor::full(&[4], 0.8), 7))?;
/// let response = ticket.wait()?;
/// assert!(response.prediction < 3);
/// service.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct InferenceService {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl InferenceService {
    /// Validates the model against `probe`, installs it as generation
    /// 1 and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for an invalid configuration and
    /// [`ServeError::SwapRejected`] when the initial model fails probe
    /// validation.
    pub fn start(net: SpikingNetwork, probe: Tensor, config: ServeConfig) -> Result<Self> {
        config.validate()?;
        let (net, input_dims, time_steps) =
            validate_model(net, &probe, config.encoder, config.probe_seed)?;
        let shared = Arc::new(Shared {
            config,
            metrics: ServeMetrics::default(),
            queue: Mutex::new(QueueState {
                queue: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            model: Mutex::new(Arc::new(ModelState {
                net,
                generation: 1,
                input_dims,
                time_steps,
            })),
            model_gen: AtomicU64::new(1),
            ladder: Mutex::new(LadderState {
                level: ServiceLevel::Full,
                below_streak: 0,
            }),
            level_idx: AtomicU64::new(0),
            probe,
        });
        let workers = (0..shared.config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    // Respawn harness: a panic escaping the worker loop
                    // (the per-batch guard makes this unlikely) restarts
                    // the loop instead of silently losing the thread.
                    loop {
                        let done = catch_unwind(AssertUnwindSafe(|| worker_loop(&shared))).is_ok();
                        if done || shared.queue.lock().expect("queue lock").closed {
                            break;
                        }
                        shared
                            .metrics
                            .worker_respawns
                            .fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        Ok(InferenceService {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// Submits a request, returning a [`Ticket`] for its response.
    ///
    /// # Errors
    ///
    /// * [`ServeError::InvalidRequest`] — image shape does not match
    ///   the served model.
    /// * [`ServeError::Shed`] — shedding level and priority below the
    ///   admission floor.
    /// * [`ServeError::QueueFull`] — bounded-queue backpressure.
    /// * [`ServeError::ShuttingDown`] — service closed.
    pub fn submit(&self, req: Request) -> Result<Ticket> {
        let model = Arc::clone(&self.shared.model.lock().expect("model lock"));
        if req.image.shape().dims() != model.input_dims.as_slice() {
            return Err(ServeError::InvalidRequest {
                message: format!(
                    "image shape {:?} does not match model input {:?}",
                    req.image.shape().dims(),
                    model.input_dims
                ),
            });
        }
        if self.shared.current_level() >= ServiceLevel::Shedding && req.priority < Priority::Normal
        {
            self.shared
                .metrics
                .shed_priority
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Shed {
                priority: format!("{:?}", req.priority),
            });
        }
        let submitted = Instant::now();
        let expires = req.deadline.map(|d| submitted + d);
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            if q.closed {
                return Err(ServeError::ShuttingDown);
            }
            if q.queue.len() >= self.shared.config.queue_capacity {
                self.shared
                    .metrics
                    .rejected_full
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::QueueFull {
                    depth: q.queue.len(),
                    capacity: self.shared.config.queue_capacity,
                });
            }
            q.queue.push_back(Pending {
                image: req.image,
                seed: req.seed,
                priority: req.priority,
                poison: req.poison,
                submitted,
                expires,
                tx,
            });
        }
        self.shared
            .metrics
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        self.shared.available.notify_one();
        Ok(Ticket { rx })
    }

    /// Submits and waits — the one-call convenience path.
    ///
    /// # Errors
    ///
    /// Propagates [`InferenceService::submit`] and service-side errors.
    pub fn classify_blocking(&self, image: Tensor, seed: u64) -> Result<Response> {
        self.submit(Request::new(image, seed))?.wait()
    }

    /// Validates `net` against the pinned probe and atomically installs
    /// it as the next generation. On validation failure the previous
    /// model keeps serving (rollback) and the error reports why.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::SwapRejected`] with the rollback reason.
    pub fn swap_model(&self, net: SpikingNetwork) -> Result<u64> {
        let validated = validate_model(
            net,
            &self.shared.probe,
            self.shared.config.encoder,
            self.shared.config.probe_seed,
        );
        let (net, input_dims, time_steps) = match validated {
            Ok(v) => v,
            Err(e) => {
                self.shared
                    .metrics
                    .swap_rollbacks
                    .fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        let mut slot = self.shared.model.lock().expect("model lock");
        let generation = slot.generation + 1;
        *slot = Arc::new(ModelState {
            net,
            generation,
            input_dims,
            time_steps,
        });
        self.shared.model_gen.store(generation, Ordering::Release);
        self.shared.metrics.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(generation)
    }

    /// Loads a [`NetworkSnapshot`](axsnn_core::io::NetworkSnapshot)
    /// file (hardened `load_network` validation: finite weights,
    /// aligned plan) and hot-swaps it via
    /// [`InferenceService::swap_model`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::SwapRejected`] for a corrupt file or a
    /// model failing probe validation; either way the previous model
    /// keeps serving.
    pub fn swap_model_file(&self, path: impl AsRef<Path>) -> Result<u64> {
        match load_network(path.as_ref()) {
            Ok(net) => self.swap_model(net),
            Err(e) => {
                self.shared
                    .metrics
                    .swap_rollbacks
                    .fetch_add(1, Ordering::Relaxed);
                Err(ServeError::SwapRejected {
                    reason: format!("snapshot load failed: {e}"),
                })
            }
        }
    }

    /// The currently served model generation.
    pub fn generation(&self) -> u64 {
        self.shared.model_gen.load(Ordering::Acquire)
    }

    /// The degradation ladder's current level.
    pub fn level(&self) -> ServiceLevel {
        self.shared.current_level()
    }

    /// Requests currently queued.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("queue lock").queue.len()
    }

    /// Point-in-time metrics copy.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Closes admission, drains the queue (every queued request still
    /// gets an answer) and joins the workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.closed = true;
        }
        self.shared.available.notify_all();
        let mut workers = self.workers.lock().expect("workers lock");
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for InferenceService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Sends a response, recording completion metrics. A dropped ticket
/// (disconnected receiver) is not an error.
fn respond_ok(shared: &Shared, pending: &Pending, response: Response) {
    shared.metrics.completed.fetch_add(1, Ordering::Relaxed);
    shared.metrics.record_latency(pending.submitted.elapsed());
    let _ = pending.tx.send(Ok(response));
}

fn respond_err(pending: &Pending, err: ServeError) {
    let _ = pending.tx.send(Err(err));
}

/// Pops up to `room` dispatchable requests from the queue into
/// `batch`, answering expired and shed requests on the spot (dropped
/// strictly before execution).
fn drain_into_batch(
    shared: &Shared,
    queue: &mut VecDeque<Pending>,
    batch: &mut Vec<Pending>,
    level: ServiceLevel,
    room: usize,
) {
    while batch.len() < room {
        let Some(pending) = queue.pop_front() else {
            break;
        };
        if let Some(expires) = pending.expires {
            let now = Instant::now();
            if now >= expires {
                shared.metrics.expired.fetch_add(1, Ordering::Relaxed);
                respond_err(
                    &pending,
                    ServeError::DeadlineExpired {
                        waited: now.duration_since(pending.submitted),
                    },
                );
                continue;
            }
        }
        if level >= ServiceLevel::Shedding && pending.priority < Priority::Normal {
            shared.metrics.shed_priority.fetch_add(1, Ordering::Relaxed);
            respond_err(
                &pending,
                ServeError::Shed {
                    priority: format!("{:?}", pending.priority),
                },
            );
            continue;
        }
        batch.push(pending);
    }
}

/// One worker's cached model clone, tracked by generation and the plan
/// currently applied to it.
struct WorkerModel {
    net: SpikingNetwork,
    generation: u64,
    time_steps: usize,
    degraded: bool,
}

impl WorkerModel {
    /// Fresh pristine clone of the shared model.
    fn refresh(shared: &Shared) -> WorkerModel {
        let model = Arc::clone(&shared.model.lock().expect("model lock"));
        WorkerModel {
            net: model.net.clone(),
            generation: model.generation,
            time_steps: model.time_steps,
            degraded: false,
        }
    }

    /// Ensures the clone matches the shared generation and the ladder's
    /// plan for `level`. Recovery re-clones the pristine model rather
    /// than guessing an inverse override, so custom snapshot plans
    /// survive a degrade/recover cycle intact.
    fn sync(&mut self, shared: &Shared, level: ServiceLevel) {
        if self.generation != shared.model_gen.load(Ordering::Acquire) {
            *self = WorkerModel::refresh(shared);
        }
        let want_degraded = level >= ServiceLevel::DegradedPlan;
        if want_degraded && !self.degraded {
            self.net.apply_plan(shared.config.degrade.degraded_plan);
            if let Some(plane) = shared.config.degrade.degraded_weight_plane {
                // Installed models are validated finite at swap time, so
                // the int8 finiteness pre-check cannot fail here; if it
                // ever does, serving on f32 weights beats crashing a
                // worker.
                let _ = self.net.set_weight_plane(plane);
            }
            self.degraded = true;
        } else if !want_degraded && self.degraded {
            *self = WorkerModel::refresh(shared);
        }
    }

    /// Encode length for the current degradation state.
    fn effective_time_steps(&self, shared: &Shared) -> usize {
        match (self.degraded, shared.config.degrade.degraded_time_steps) {
            (true, Some(t)) => t.min(self.time_steps),
            _ => self.time_steps,
        }
    }
}

/// Encodes and classifies `batch` as one fused shard. Runs inside the
/// worker's `catch_unwind`; a poisoned request panics here.
fn execute_batch(
    net: &mut SpikingNetwork,
    batch: &[Pending],
    encoder: axsnn_core::encoding::Encoder,
    time_steps: usize,
) -> axsnn_core::Result<Vec<usize>> {
    let mut trains = Vec::with_capacity(batch.len());
    for pending in batch {
        if pending.poison {
            panic!("injected poison (request seed {})", pending.seed);
        }
        let mut rng = StdRng::seed_from_u64(pending.seed);
        trains.push(FrameTrain::encode(
            &pending.image,
            encoder,
            time_steps,
            &mut rng,
        )?);
    }
    net.classify_batch_fused(&trains)
}

/// Post-panic isolation pass: every request of the failed batch is
/// retried once, alone, on a fresh model clone. The poisoned request
/// panics again and fails alone; its batch mates get served.
fn retry_individually(
    shared: &Shared,
    worker: &mut WorkerModel,
    batch: Vec<Pending>,
    level: ServiceLevel,
    dispatch: Instant,
) {
    let encoder = shared.config.encoder;
    for pending in batch {
        if let Some(expires) = pending.expires {
            let now = Instant::now();
            if now >= expires {
                shared.metrics.expired.fetch_add(1, Ordering::Relaxed);
                respond_err(
                    &pending,
                    ServeError::DeadlineExpired {
                        waited: now.duration_since(pending.submitted),
                    },
                );
                continue;
            }
        }
        shared
            .metrics
            .isolation_retries
            .fetch_add(1, Ordering::Relaxed);
        let time_steps = worker.effective_time_steps(shared);
        let single = std::slice::from_ref(&pending);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            execute_batch(&mut worker.net, single, encoder, time_steps)
        }));
        match outcome {
            Ok(Ok(predictions)) => {
                respond_ok(
                    shared,
                    &pending,
                    Response {
                        prediction: predictions[0],
                        queue_wait: dispatch.duration_since(pending.submitted),
                        batch_size: 1,
                        level,
                        generation: worker.generation,
                        retried: true,
                    },
                );
            }
            Ok(Err(e)) => respond_err(&pending, ServeError::Core(e)),
            Err(panic) => {
                shared
                    .metrics
                    .poisoned_failed
                    .fetch_add(1, Ordering::Relaxed);
                respond_err(
                    &pending,
                    ServeError::WorkerPanicked {
                        payload: panic_payload(panic.as_ref()),
                    },
                );
                // The panic may have torn mid-forward state; rebuild
                // before the next retry (counts as a respawn).
                shared
                    .metrics
                    .worker_respawns
                    .fetch_add(1, Ordering::Relaxed);
                let degraded = worker.degraded;
                *worker = WorkerModel::refresh(shared);
                if degraded {
                    worker.sync(shared, level);
                }
            }
        }
    }
}

/// A worker thread's life: assemble a batch (bounded coalescing wait),
/// execute it fused, answer every member. Returns on shutdown with the
/// queue drained.
fn worker_loop(shared: &Shared) {
    let mut worker = WorkerModel::refresh(shared);
    loop {
        let mut batch: Vec<Pending> = Vec::new();
        let level;
        {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if !q.queue.is_empty() {
                    break;
                }
                if q.closed {
                    return;
                }
                q = shared.available.wait(q).expect("queue lock");
            }
            let depth = q.queue.len();
            shared.metrics.observe_queue_depth(depth);
            level = shared.observe_occupancy(depth);
            let max_batch = shared.config.max_batch;
            drain_into_batch(shared, &mut q.queue, &mut batch, level, max_batch);
            // Coalescing window: hold the first request(s) open briefly
            // so concurrent submitters can join this fused shard.
            let window = shared.config.window_at(level);
            let coalesce_until = Instant::now() + window;
            while !batch.is_empty() && batch.len() < max_batch {
                if !q.queue.is_empty() {
                    drain_into_batch(shared, &mut q.queue, &mut batch, level, max_batch);
                    continue;
                }
                if q.closed {
                    break;
                }
                let remaining = match coalesce_until.checked_duration_since(Instant::now()) {
                    Some(r) if r > Duration::ZERO => r,
                    _ => break,
                };
                let (guard, timeout) = shared
                    .available
                    .wait_timeout(q, remaining)
                    .expect("queue lock");
                q = guard;
                if timeout.timed_out() && q.queue.is_empty() {
                    break;
                }
            }
            if !q.queue.is_empty() {
                // Leftover work: wake a sibling before we go compute.
                shared.available.notify_one();
            }
        }
        if batch.is_empty() {
            continue;
        }
        let dispatch = Instant::now();
        worker.sync(shared, level);
        let time_steps = worker.effective_time_steps(shared);
        let encoder = shared.config.encoder;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            execute_batch(&mut worker.net, &batch, encoder, time_steps)
        }));
        match outcome {
            Ok(Ok(predictions)) => {
                let batch_size = batch.len();
                shared.metrics.batches.fetch_add(1, Ordering::Relaxed);
                shared
                    .metrics
                    .batched_requests
                    .fetch_add(batch_size as u64, Ordering::Relaxed);
                for (pending, prediction) in batch.iter().zip(predictions) {
                    respond_ok(
                        shared,
                        pending,
                        Response {
                            prediction,
                            queue_wait: dispatch.duration_since(pending.submitted),
                            batch_size,
                            level,
                            generation: worker.generation,
                            retried: false,
                        },
                    );
                }
            }
            Ok(Err(_batch_error)) => {
                // A batch-level error (e.g. one bad train) poisons the
                // fused shard but not its members: fall back to the
                // individual pass so each request gets its own verdict.
                retry_individually(shared, &mut worker, batch, level, dispatch);
            }
            Err(panic) => {
                shared.metrics.batch_panics.fetch_add(1, Ordering::Relaxed);
                shared
                    .metrics
                    .worker_respawns
                    .fetch_add(1, Ordering::Relaxed);
                let _ = panic_payload(panic.as_ref());
                // The panic may have torn the clone's forward state:
                // respawn it from the shared snapshot, then isolate.
                let degraded = worker.degraded;
                worker = WorkerModel::refresh(shared);
                if degraded {
                    worker.sync(shared, level);
                }
                retry_individually(shared, &mut worker, batch, level, dispatch);
            }
        }
    }
}
