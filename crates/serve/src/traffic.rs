//! Open-loop synthetic traffic for exercising the service.
//!
//! Arrivals follow a Poisson process (exponential inter-arrival times)
//! at a per-phase rate; the generator never waits for responses while
//! submitting (open loop), so overload actually overloads — queue
//! depth, shedding and backpressure behave as they would behind a real
//! ingress. Phases compose steady load, bursts, deadline pressure and
//! fault injection (poison pills) into one scripted run, in the spirit
//! of the sweep engine's `FaultPlan`.

use crate::config::Priority;
use crate::error::ServeError;
use crate::server::{InferenceService, Request, Ticket};
use axsnn_core::batch::sample_seed;
use axsnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// One scripted traffic phase.
#[derive(Debug, Clone)]
pub struct TrafficPhase {
    /// Label for reports.
    pub name: String,
    /// Mean Poisson arrival rate, requests per second.
    pub rate_hz: f64,
    /// Requests submitted in this phase.
    pub requests: usize,
    /// Deadline attached to each request, if any.
    pub deadline: Option<Duration>,
    /// Poison every Nth request (1-based) — each poisoned request
    /// panics the worker that executes it.
    pub poison_every: Option<usize>,
    /// Fraction of requests submitted at [`Priority::Low`].
    pub low_priority_share: f64,
}

impl TrafficPhase {
    /// Steady well-behaved load.
    pub fn steady(name: &str, rate_hz: f64, requests: usize) -> Self {
        TrafficPhase {
            name: name.into(),
            rate_hz,
            requests,
            deadline: None,
            poison_every: None,
            low_priority_share: 0.0,
        }
    }

    /// A burst: same shape, higher rate, partly low-priority so the
    /// shedding rung has something to shed.
    pub fn burst(name: &str, rate_hz: f64, requests: usize, low_priority_share: f64) -> Self {
        TrafficPhase {
            low_priority_share,
            ..TrafficPhase::steady(name, rate_hz, requests)
        }
    }

    /// Attaches a per-request deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Poisons every `n`th request.
    #[must_use]
    pub fn with_poison_every(mut self, n: usize) -> Self {
        self.poison_every = Some(n.max(1));
        self
    }
}

/// A scripted open-loop run: phases played back to back.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Phases, in order.
    pub phases: Vec<TrafficPhase>,
    /// Seed for arrival jitter, priority draws and per-request
    /// encoding seeds.
    pub seed: u64,
    /// How long the harvester waits on each outstanding ticket before
    /// declaring it hung (the zero-hangs invariant's detector).
    pub harvest_timeout: Duration,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            phases: Vec::new(),
            seed: 7,
            harvest_timeout: Duration::from_secs(10),
        }
    }
}

/// Outcome tally of one open-loop run. Every attempted submission is
/// accounted for in exactly one bucket.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Submissions attempted.
    pub attempted: usize,
    /// Requests answered with a prediction.
    pub completed: usize,
    /// Rejected at admission by queue-full backpressure.
    pub rejected_full: usize,
    /// Shed for priority (at admission or dispatch).
    pub shed: usize,
    /// Dropped on an expired deadline before execution.
    pub expired: usize,
    /// Failed with a pinned worker panic.
    pub panicked: usize,
    /// Any other failure.
    pub other_failed: usize,
    /// Tickets unanswered within the harvest timeout. The service
    /// guarantees this stays 0.
    pub hung: usize,
    /// Wall-clock for the whole run (submission + harvest).
    pub elapsed_us: u64,
}

impl TrafficReport {
    /// Served predictions per wall-clock second.
    pub fn goodput_rps(&self) -> f64 {
        if self.elapsed_us == 0 {
            0.0
        } else {
            self.completed as f64 / (self.elapsed_us as f64 / 1e6)
        }
    }

    /// Fraction of attempted submissions that got a prediction.
    pub fn goodput_fraction(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.completed as f64 / self.attempted as f64
        }
    }

    /// Cross-check: every attempt landed in exactly one bucket.
    pub fn accounted(&self) -> bool {
        self.completed
            + self.rejected_full
            + self.shed
            + self.expired
            + self.panicked
            + self.other_failed
            + self.hung
            == self.attempted
    }
}

/// Exponential inter-arrival draw for a Poisson process at `rate_hz`.
fn exp_interval(rng: &mut StdRng, rate_hz: f64) -> Duration {
    let u: f64 = rng.gen::<f64>().clamp(f64::MIN_POSITIVE, 1.0 - 1e-12);
    Duration::from_secs_f64((-u.ln() / rate_hz).min(1.0))
}

/// Plays `config`'s phases against `service`, cycling through `images`,
/// then harvests every outstanding ticket and tallies outcomes.
///
/// Submission is open-loop: the generator sleeps out Poisson
/// inter-arrival gaps but never blocks on a response.
pub fn run_open_loop(
    service: &InferenceService,
    images: &[Tensor],
    config: &TrafficConfig,
) -> TrafficReport {
    let started = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut report = TrafficReport::default();
    let mut outstanding: Vec<Ticket> = Vec::new();
    let mut index = 0usize;
    for phase in &config.phases {
        for i in 0..phase.requests {
            if phase.rate_hz.is_finite() && phase.rate_hz > 0.0 {
                std::thread::sleep(exp_interval(&mut rng, phase.rate_hz));
            }
            let image = images[index % images.len()].clone();
            let mut request = Request::new(image, sample_seed(config.seed, index));
            if rng.gen::<f64>() < phase.low_priority_share {
                request = request.with_priority(Priority::Low);
            }
            if let Some(deadline) = phase.deadline {
                request = request.with_deadline(deadline);
            }
            if let Some(n) = phase.poison_every {
                if (i + 1) % n == 0 {
                    request = request.poisoned();
                }
            }
            report.attempted += 1;
            index += 1;
            match service.submit(request) {
                Ok(ticket) => outstanding.push(ticket),
                Err(ServeError::QueueFull { .. }) => report.rejected_full += 1,
                Err(ServeError::Shed { .. }) => report.shed += 1,
                Err(_) => report.other_failed += 1,
            }
        }
    }
    for ticket in outstanding {
        match ticket.wait_timeout(config.harvest_timeout) {
            None => report.hung += 1,
            Some(Ok(_response)) => report.completed += 1,
            Some(Err(ServeError::DeadlineExpired { .. })) => report.expired += 1,
            Some(Err(ServeError::WorkerPanicked { .. })) => report.panicked += 1,
            Some(Err(ServeError::Shed { .. })) => report.shed += 1,
            Some(Err(_)) => report.other_failed += 1,
        }
    }
    report.elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_interval_is_positive_and_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let d = exp_interval(&mut rng, 1000.0);
            assert!(d > Duration::ZERO);
            assert!(d <= Duration::from_secs(1));
        }
    }

    #[test]
    fn report_accounting() {
        let mut r = TrafficReport {
            attempted: 5,
            completed: 2,
            rejected_full: 1,
            shed: 1,
            expired: 1,
            ..TrafficReport::default()
        };
        assert!(r.accounted());
        assert!((r.goodput_fraction() - 0.4).abs() < 1e-12);
        r.hung = 1;
        assert!(!r.accounted());
    }

    #[test]
    fn phase_builders_compose() {
        let p = TrafficPhase::burst("b", 500.0, 40, 0.5)
            .with_deadline(Duration::from_millis(2))
            .with_poison_every(7);
        assert_eq!(p.low_priority_share, 0.5);
        assert_eq!(p.poison_every, Some(7));
        assert!(p.deadline.is_some());
    }
}
