//! Service-level equivalence and robustness pins.
//!
//! The load-bearing guarantee: micro-batching is a *scheduling*
//! optimization, never a semantic one. For any interleaving of
//! concurrent requests, any batch composition, any window size and the
//! `ForceDense` degradation state, served predictions are bit-identical
//! to the direct `classify_batch_fused` / `classify` paths with the
//! same per-request seed. Plus regressions for every robustness
//! property: deadline expiry, panic isolation + respawn, hot-swap
//! rollback, backpressure and priority shedding.

use axsnn_core::encoding::Encoder;
use axsnn_core::fused::FrameTrain;
use axsnn_core::io::{save_network, snapshot_network};
use axsnn_core::layer::Layer;
use axsnn_core::network::{SnnConfig, SpikingNetwork};
use axsnn_serve::{
    run_open_loop, DegradeConfig, InferenceService, Priority, Request, ServeConfig, ServeError,
    ServiceLevel, TrafficConfig, TrafficPhase,
};
use axsnn_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const INPUT: usize = 8;
const CLASSES: usize = 3;
const TIME_STEPS: usize = 5;

fn make_net(seed: u64) -> SpikingNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = SnnConfig {
        threshold: 1.0,
        time_steps: TIME_STEPS,
        leak: 0.9,
    };
    SpikingNetwork::new(
        vec![
            Layer::spiking_linear(&mut rng, INPUT, 10, &cfg),
            Layer::output_linear(&mut rng, 10, CLASSES),
        ],
        cfg,
    )
    .expect("valid net")
}

fn probe() -> Tensor {
    Tensor::full(&[INPUT], 0.5)
}

fn make_image(seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD15EA5E);
    let data: Vec<f32> = (0..INPUT).map(|_| rng.gen::<f32>()).collect();
    Tensor::from_vec(data, &[INPUT]).expect("image")
}

/// The reference path: per-sample `classify` with the same seed the
/// service uses for encoding.
fn direct_prediction(net: &SpikingNetwork, image: &Tensor, seed: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    net.clone()
        .classify(image, Encoder::Deterministic, &mut rng)
        .expect("direct classify")
}

/// The reference fused path, one row per request.
fn direct_fused(net: &SpikingNetwork, requests: &[(Tensor, u64)]) -> Vec<usize> {
    let trains: Vec<FrameTrain> = requests
        .iter()
        .map(|(image, seed)| {
            let mut rng = StdRng::seed_from_u64(*seed);
            FrameTrain::encode(image, Encoder::Deterministic, TIME_STEPS, &mut rng).expect("encode")
        })
        .collect();
    net.clone().classify_batch_fused(&trains).expect("fused")
}

fn base_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 64,
        batch_window: Duration::from_millis(1),
        max_batch: 8,
        encoder: Encoder::Deterministic,
        ..ServeConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any interleaving of concurrent submitters, any window size, any
    /// batch cap, any worker count — and optionally the ForceDense
    /// degradation state — serves predictions bit-identical to the
    /// direct per-sample path.
    #[test]
    fn served_equals_direct_under_any_interleaving(
        n_requests in 1usize..20,
        window_us in 0u64..2_000,
        max_batch in 1usize..8,
        workers in 1usize..4,
        submitters in 1usize..4,
        force_dense in proptest::bool::ANY,
        net_seed in 0u64..50,
    ) {
        let net = make_net(net_seed);
        let mut config = base_config();
        config.workers = workers;
        config.batch_window = Duration::from_micros(window_us);
        config.max_batch = max_batch;
        if force_dense {
            // Ladder pinned at DegradedPlan: occupancy >= 0 always
            // crosses a zero threshold, and shed_at 1.01 is unreachable.
            config.degrade = DegradeConfig {
                shrink_at: 0.0,
                degrade_at: 0.0,
                shed_at: 1.0,
                ..DegradeConfig::default()
            };
        }
        let service = InferenceService::start(net.clone(), probe(), config).expect("start");
        let requests: Vec<(Tensor, u64)> = (0..n_requests)
            .map(|i| (make_image(i as u64), 1000 + i as u64))
            .collect();
        let expected: Vec<usize> = requests
            .iter()
            .map(|(image, seed)| direct_prediction(&net, image, *seed))
            .collect();
        prop_assert_eq!(&expected, &direct_fused(&net, &requests));

        let mut served = vec![usize::MAX; n_requests];
        std::thread::scope(|scope| {
            let chunk = n_requests.div_ceil(submitters);
            type Lane<'a> = (usize, &'a [(Tensor, u64)], &'a mut [usize]);
            let mut work: Vec<Lane> = Vec::new();
            let mut rest = served.as_mut_slice();
            for (lane, reqs) in requests.chunks(chunk).enumerate() {
                let (head, tail) = rest.split_at_mut(reqs.len());
                rest = tail;
                work.push((lane * chunk, reqs, head));
            }
            for (_, reqs, out) in work {
                let service = &service;
                scope.spawn(move || {
                    let tickets: Vec<_> = reqs
                        .iter()
                        .map(|(image, seed)| {
                            service
                                .submit(Request::new(image.clone(), *seed))
                                .expect("capacity 64 never fills here")
                        })
                        .collect();
                    for (slot, ticket) in out.iter_mut().zip(tickets) {
                        *slot = ticket.wait().expect("served").prediction;
                    }
                });
            }
        });
        prop_assert_eq!(&served, &expected);
        if force_dense {
            prop_assert!(service.level() >= ServiceLevel::DegradedPlan);
        }
        let m = service.metrics();
        prop_assert_eq!(m.completed, n_requests as u64);
        service.shutdown();
    }
}

#[test]
fn expired_deadline_is_dropped_before_execution() {
    let net = make_net(3);
    let service = InferenceService::start(net, probe(), base_config()).expect("start");
    // A zero deadline is already expired by dispatch time: the service
    // must answer DeadlineExpired without running the model.
    let ticket = service
        .submit(Request::new(make_image(0), 1).with_deadline(Duration::ZERO))
        .expect("admitted");
    match ticket.wait() {
        Err(ServeError::DeadlineExpired { .. }) => {}
        other => panic!("expected DeadlineExpired, got {other:?}"),
    }
    let m = service.metrics();
    assert_eq!(m.expired, 1);
    assert_eq!(m.completed, 0);
    // The service keeps serving healthy traffic afterwards.
    let r = service.classify_blocking(make_image(1), 2).expect("served");
    assert!(r.prediction < CLASSES);
    service.shutdown();
}

#[test]
fn poisoned_request_fails_alone_and_worker_respawns() {
    let net = make_net(4);
    let mut config = base_config();
    config.workers = 1;
    config.batch_window = Duration::from_millis(30);
    config.max_batch = 8;
    let service = InferenceService::start(net.clone(), probe(), config).expect("start");

    // Submit normals + one poison quickly so they coalesce into one
    // batch on the single worker.
    let normals: Vec<(Tensor, u64)> = (0..4).map(|i| (make_image(i), 40 + i)).collect();
    let mut tickets = Vec::new();
    for (image, seed) in &normals {
        tickets.push(service.submit(Request::new(image.clone(), *seed)).unwrap());
    }
    let poison_ticket = service
        .submit(Request::new(make_image(99), 999).poisoned())
        .unwrap();

    // Every healthy batch mate still gets its bit-exact answer.
    for (ticket, (image, seed)) in tickets.into_iter().zip(&normals) {
        let response = ticket.wait().expect("batch mates must be served");
        assert_eq!(response.prediction, direct_prediction(&net, image, *seed));
    }
    // The poisoned request fails alone, typed as a worker panic.
    match poison_ticket.wait() {
        Err(ServeError::WorkerPanicked { payload }) => {
            assert!(payload.contains("injected poison"), "{payload}");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    let m = service.metrics();
    assert!(m.batch_panics >= 1, "batch panic recorded: {m:?}");
    assert!(m.worker_respawns >= 1, "respawn recorded: {m:?}");
    assert!(m.poisoned_failed >= 1, "poison pinned: {m:?}");
    // And the respawned worker serves follow-up traffic correctly.
    let follow = make_image(7);
    let r = service
        .classify_blocking(follow.clone(), 77)
        .expect("alive");
    assert_eq!(r.prediction, direct_prediction(&net, &follow, 77));
    service.shutdown();
}

#[test]
fn hot_swap_validates_and_rolls_back() {
    let net_a = make_net(10);
    let net_b = make_net(11);
    let service = InferenceService::start(net_a.clone(), probe(), base_config()).expect("start");
    assert_eq!(service.generation(), 1);

    // A valid swap bumps the generation and serves the new weights.
    let generation = service.swap_model(net_b.clone()).expect("valid swap");
    assert_eq!(generation, 2);
    let image = make_image(5);
    let r = service
        .classify_blocking(image.clone(), 55)
        .expect("served");
    assert_eq!(r.prediction, direct_prediction(&net_b, &image, 55));
    assert_eq!(r.generation, 2);

    // A wrong-shape candidate is rejected by the probe smoke test and
    // rolled back: the old model keeps serving.
    let mut rng = StdRng::seed_from_u64(0);
    let cfg = SnnConfig {
        threshold: 1.0,
        time_steps: TIME_STEPS,
        leak: 0.9,
    };
    let wrong_shape = SpikingNetwork::new(
        vec![
            Layer::spiking_linear(&mut rng, INPUT + 1, 4, &cfg),
            Layer::output_linear(&mut rng, 4, CLASSES),
        ],
        cfg,
    )
    .unwrap();
    match service.swap_model(wrong_shape) {
        Err(ServeError::SwapRejected { reason }) => {
            assert!(reason.contains("probe"), "{reason}");
        }
        other => panic!("expected SwapRejected, got {other:?}"),
    }
    assert_eq!(service.generation(), 2, "rollback keeps generation");

    // A corrupt snapshot file is rejected by the hardened loader.
    let dir = std::env::temp_dir();
    let good_path = dir.join(format!("axsnn_swap_good_{}.json", std::process::id()));
    let bad_path = dir.join(format!("axsnn_swap_bad_{}.json", std::process::id()));
    save_network(&net_a, &good_path).unwrap();
    let text = std::fs::read_to_string(&good_path).unwrap();
    std::fs::write(&bad_path, &text[..text.len() / 2]).unwrap();
    match service.swap_model_file(&bad_path) {
        Err(ServeError::SwapRejected { reason }) => {
            assert!(reason.contains("snapshot load failed"), "{reason}");
        }
        other => panic!("expected SwapRejected, got {other:?}"),
    }
    assert_eq!(service.generation(), 2);
    // A structure/plan-mismatched snapshot is also rejected pre-install.
    let mut snapshot = snapshot_network(&net_a).unwrap();
    snapshot.plan[0].kind = "flatten".into();
    std::fs::write(&bad_path, snapshot.to_json_string()).unwrap();
    assert!(service.swap_model_file(&bad_path).is_err());
    assert_eq!(service.generation(), 2);
    // The good file still swaps in fine (generation 3) and serves.
    assert_eq!(service.swap_model_file(&good_path).unwrap(), 3);
    let r = service
        .classify_blocking(image.clone(), 55)
        .expect("served");
    assert_eq!(r.prediction, direct_prediction(&net_a, &image, 55));
    let m = service.metrics();
    assert_eq!(m.swaps, 2);
    // Three rejected candidates: wrong shape, truncated file,
    // plan-mismatched file.
    assert_eq!(m.swap_rollbacks, 3);
    let _ = std::fs::remove_file(&good_path);
    let _ = std::fs::remove_file(&bad_path);
    service.shutdown();
}

/// With a degraded weight plane configured, requests dispatched at
/// [`ServiceLevel::DegradedPlan`] are served by the int8-planed model:
/// predictions match the direct path with the same plane installed.
#[test]
fn degraded_weight_plane_serves_quantized_predictions() {
    use axsnn_core::plan::WeightPlane;
    let net = make_net(18);
    let mut config = base_config();
    config.workers = 1;
    // Ladder pinned at DegradedPlan from the first dispatch observation.
    config.degrade = DegradeConfig {
        shrink_at: 0.0,
        degrade_at: 0.0,
        shed_at: 1.0,
        degraded_weight_plane: Some(WeightPlane::Int8),
        ..DegradeConfig::default()
    };
    let service = InferenceService::start(net.clone(), probe(), config).expect("start");
    // Warm-up dispatch: the worker observes occupancy and escalates.
    service
        .classify_blocking(make_image(0), 500)
        .expect("served");
    assert!(service.level() >= ServiceLevel::DegradedPlan);

    let mut planed = net.clone();
    planed
        .set_weight_plane(WeightPlane::Int8)
        .expect("finite weights");
    for i in 1..12u64 {
        let image = make_image(i);
        let r = service
            .classify_blocking(image.clone(), 500 + i)
            .expect("served");
        assert_eq!(
            r.prediction,
            direct_prediction(&planed, &image, 500 + i),
            "request {i} must be served by the int8-planed model"
        );
    }
    service.shutdown();
}

#[test]
fn bounded_queue_applies_backpressure() {
    let net = make_net(6);
    let mut config = base_config();
    config.workers = 1;
    config.queue_capacity = 2;
    config.batch_window = Duration::from_millis(20);
    config.max_batch = 2;
    let service = InferenceService::start(net, probe(), config).expect("start");
    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for i in 0..40u64 {
        match service.submit(Request::new(make_image(i), i)) {
            Ok(t) => accepted.push(t),
            Err(ServeError::QueueFull { capacity, .. }) => {
                assert_eq!(capacity, 2);
                rejected += 1;
            }
            Err(other) => panic!("unexpected {other:?}"),
        }
    }
    assert!(rejected > 0, "40 instant submits into capacity 2 must trip");
    // Every accepted request still completes: backpressure never
    // strands admitted work.
    for ticket in accepted {
        ticket.wait().expect("admitted work is always served");
    }
    assert!(service.metrics().rejected_full >= rejected as u64);
    service.shutdown();
}

#[test]
fn shedding_level_rejects_low_priority_only() {
    let net = make_net(8);
    let mut config = base_config();
    // All thresholds at 0 pin the ladder at Shedding from the first
    // dispatch on.
    config.degrade = DegradeConfig {
        shrink_at: 0.0,
        degrade_at: 0.0,
        shed_at: 0.0,
        ..DegradeConfig::default()
    };
    let service = InferenceService::start(net, probe(), config).expect("start");
    // Drive one request through so a worker observes occupancy and
    // escalates the ladder.
    service.classify_blocking(make_image(0), 0).expect("served");
    assert_eq!(service.level(), ServiceLevel::Shedding);
    match service.submit(Request::new(make_image(1), 1).with_priority(Priority::Low)) {
        Err(ServeError::Shed { .. }) => {}
        other => panic!("expected Shed, got {other:?}"),
    }
    // Normal and High priority still pass admission.
    service.classify_blocking(make_image(2), 2).expect("served");
    let t = service
        .submit(Request::new(make_image(3), 3).with_priority(Priority::High))
        .expect("high admitted");
    t.wait().expect("high served");
    assert!(service.metrics().shed_priority >= 1);
    service.shutdown();
}

#[test]
fn ladder_recovers_with_hysteresis_dwell() {
    let net = make_net(12);
    let mut config = base_config();
    config.workers = 1;
    config.queue_capacity = 4;
    config.degrade = DegradeConfig {
        shrink_at: 0.5,
        degrade_at: 0.95,
        shed_at: 1.0,
        hysteresis_margin: 0.1,
        recovery_dwell: 2,
        ..DegradeConfig::default()
    };
    config.batch_window = Duration::from_millis(5);
    let service = InferenceService::start(net, probe(), config).expect("start");
    // Flood: 4 queued / capacity 4 crosses shrink_at.
    let tickets: Vec<_> = (0..8u64)
        .filter_map(|i| service.submit(Request::new(make_image(i), i)).ok())
        .collect();
    for t in tickets {
        let _ = t.wait();
    }
    assert!(
        service.level() > ServiceLevel::Full,
        "flood must have escalated, got {:?}",
        service.level()
    );
    // Calm traffic: single blocking requests keep occupancy near 0, so
    // after `recovery_dwell` observations per rung the ladder steps
    // back down — one rung at a time, each entry counted.
    for i in 0..16u64 {
        service
            .classify_blocking(make_image(i), 100 + i)
            .expect("served");
    }
    assert_eq!(service.level(), ServiceLevel::Full, "ladder must recover");
    let m = service.metrics();
    assert!(
        m.level_entries[ServiceLevel::ShrunkWindow.index()] >= 1,
        "stepwise recovery passes through ShrunkWindow: {m:?}"
    );
    assert!(m.total_transitions() >= 2);
    service.shutdown();
}

#[test]
fn open_loop_traffic_with_faults_has_zero_hangs() {
    let net = make_net(14);
    let mut config = base_config();
    config.workers = 2;
    config.queue_capacity = 16;
    let service = InferenceService::start(net, probe(), config).expect("start");
    let images: Vec<Tensor> = (0..6).map(make_image).collect();
    let traffic = TrafficConfig {
        phases: vec![
            TrafficPhase::steady("warm", 2_000.0, 30),
            TrafficPhase::burst("burst", 20_000.0, 60, 0.3)
                .with_deadline(Duration::from_micros(500))
                .with_poison_every(9),
            TrafficPhase::steady("cooldown", 2_000.0, 20),
        ],
        seed: 21,
        harvest_timeout: Duration::from_secs(10),
    };
    let report = run_open_loop(&service, &images, &traffic);
    assert_eq!(report.attempted, 110);
    assert!(
        report.accounted(),
        "every attempt in one bucket: {report:?}"
    );
    assert_eq!(report.hung, 0, "zero hung requests: {report:?}");
    assert!(report.completed > 0, "some goodput under chaos: {report:?}");
    service.shutdown();
}

#[test]
fn shutdown_drains_queue_and_answers_everyone() {
    let net = make_net(16);
    let mut config = base_config();
    config.workers = 1;
    config.batch_window = Duration::from_millis(10);
    let service = InferenceService::start(net, probe(), config).expect("start");
    let tickets: Vec<_> = (0..6u64)
        .map(|i| service.submit(Request::new(make_image(i), i)).unwrap())
        .collect();
    service.shutdown();
    for ticket in tickets {
        ticket.wait().expect("drained on shutdown");
    }
    assert!(matches!(
        service.submit(Request::new(make_image(0), 0)),
        Err(ServeError::ShuttingDown)
    ));
}
