//! Batched spike-plane kernels: B samples through one GEMM-shaped pass.
//!
//! The event-driven kernels in [`crate::sparse`] are matvec-shaped: one
//! sample's frame against the full weight matrix. When a batch of B
//! samples runs in lockstep (attack sweeps, dataset evaluation), that
//! shape re-streams every weight row B times — for MNIST-scale linear
//! layers the weights are megabytes while each frame's events are a few
//! hundred indices, so weight traffic dominates. This module packs B
//! spike frames into a CSR [`SpikeMatrix`] and provides kernels that
//! walk the weights *once per batch*:
//!
//! * [`sparse_matmul`] / [`sparse_matmul_bias`] — `[out, in] × B events
//!   → [B, out]`, weight-row-outer so each row is gathered against all
//!   B index lists while it is hot in cache,
//! * [`matmul_bt_bias`] — the dense batched fallback (`X · Wᵀ + b`) for
//!   analog planes, with the same cache-friendly row-dot shape,
//! * [`sparse_conv2d_batch`] — scatter conv over B stacked spike
//!   planes into a `[B, Cout·OH·OW]` block,
//! * [`sparse_avg_pool2d_batch`] / [`sparse_max_pool2d_batch`] —
//!   event pooling over stacked planes.
//!
//! Every per-row result is **bit-identical** to the corresponding
//! per-sample kernel in [`crate::sparse`] / [`crate::linalg`]: the
//! batched kernels route each row through the same shared gather /
//! scatter helpers in the same order, which is what lets the fused
//! batch forward in `axsnn-core` promise bit-for-bit equivalence with
//! per-sample classification.
//!
//! The linear-layer kernels ([`sparse_matmul`], [`sparse_matmul_bias`],
//! [`matmul_bt_bias`]) are the ones the fused engine calls on its hot
//! path. The conv/pool batch kernels are the standalone all-sparse
//! batch API — inside the fused engine, batches mix gate-admitted and
//! dense rows per step, so it drives the shared per-row primitives
//! ([`crate::sparse::sparse_conv2d_into`], the event pools) directly
//! against its own row partition instead.
//!
//! # Example
//!
//! ```
//! use axsnn_tensor::batched::{sparse_matmul, SpikeMatrix};
//! use axsnn_tensor::sparse::SpikeVector;
//! use axsnn_tensor::Tensor;
//!
//! # fn main() -> axsnn_tensor::Result<()> {
//! let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
//! let rows = vec![
//!     SpikeVector::new(vec![0], 3)?,
//!     SpikeVector::new(vec![1, 2], 3)?,
//! ];
//! let batch = SpikeMatrix::from_rows(&rows)?;
//! let y = sparse_matmul(&w, &batch)?;
//! assert_eq!(y.shape().dims(), &[2, 2]);
//! assert_eq!(y.as_slice(), &[1.0, 4.0, 5.0, 11.0]);
//! # Ok(())
//! # }
//! ```

use crate::conv::Conv2dSpec;
use crate::plane::{F16Lane, F32Lane, Int8Lane, PlaneView, WeightLane};
use crate::sparse::{gather_row_lane, sparse_conv2d_into, SpikeVector};
use crate::{Result, Tensor, TensorError};

/// A batch of binary spike frames in CSR form: one concatenated index
/// array plus row offsets, all rows sharing the same logical dense
/// length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpikeMatrix {
    indices: Vec<u32>,
    row_ptr: Vec<usize>,
    cols: usize,
}

impl SpikeMatrix {
    /// Packs per-sample spike vectors into CSR form.
    ///
    /// An empty slice yields a 0-row matrix with zero columns.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the rows disagree on
    /// their logical dense length.
    pub fn from_rows(rows: &[SpikeVector]) -> Result<Self> {
        let cols = rows.first().map(SpikeVector::len).unwrap_or(0);
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0usize);
        let nnz: usize = rows.iter().map(SpikeVector::nnz).sum();
        let mut indices = Vec::with_capacity(nnz);
        for r in rows {
            if r.len() != cols {
                return Err(TensorError::ShapeMismatch {
                    lhs: vec![cols],
                    rhs: vec![r.len()],
                    op: "SpikeMatrix::from_rows",
                });
            }
            indices.extend_from_slice(r.indices());
            row_ptr.push(indices.len());
        }
        Ok(SpikeMatrix {
            indices,
            row_ptr,
            cols,
        })
    }

    /// Extracts a binary `[B, n]` tensor's events row by row.
    ///
    /// Returns `None` when any element is neither `0.0` nor `1.0`.
    pub fn from_dense(t: &Tensor) -> Option<Self> {
        let dims = t.shape().dims();
        if dims.len() != 2 {
            return None;
        }
        let (b, n) = (dims[0], dims[1]);
        let data = t.as_slice();
        let mut rows = Vec::with_capacity(b);
        for r in 0..b {
            let row = Tensor::from_vec(data[r * n..(r + 1) * n].to_vec(), &[n]).ok()?;
            rows.push(SpikeVector::from_dense(&row)?);
        }
        Self::from_rows(&rows).ok()
    }

    /// Number of batch rows.
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Logical dense length of each row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of active spikes across the batch.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Returns `true` when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// The active indices of batch row `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[u32] {
        &self.indices[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Mean fraction of active elements across the batch.
    pub fn density(&self) -> f32 {
        let total = self.rows() * self.cols;
        if total == 0 {
            0.0
        } else {
            self.indices.len() as f32 / total as f32
        }
    }

    /// Materializes the dense binary `[B, n]` tensor.
    pub fn to_dense(&self) -> Tensor {
        let b = self.rows();
        let mut out = vec![0.0f32; b * self.cols];
        for r in 0..b {
            let base = r * self.cols;
            for &j in self.row(r) {
                out[base + j as usize] = 1.0;
            }
        }
        Tensor::from_vec(out, &[b, self.cols]).expect("volume matches by construction")
    }
}

fn check_weight(w: &Tensor, cols: usize, op: &'static str) -> Result<(usize, usize)> {
    let dims = w.shape().dims();
    if dims.len() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: dims.len(),
            op,
        });
    }
    if cols != dims[1] {
        return Err(TensorError::ShapeMismatch {
            lhs: dims.to_vec(),
            rhs: vec![cols],
            op,
        });
    }
    Ok((dims[0], dims[1]))
}

/// The GEMM microkernel: gathers one sample's index list against a tile
/// of 4 weight rows at once, writing 4 outputs.
///
/// The per-sample gather's cost is dominated by the dependent
/// index-load → data-load chain; sharing each index load across 4
/// weight rows quarters the index traffic and gives the out-of-order
/// core 16 independent accumulator chains. Per output row the
/// accumulation order is *identical* to
/// [`crate::sparse::sparse_matvec`]'s gather (4 j-lanes combined as
/// `(a0 + a1) + (a2 + a3)`, then the remainder tail), so every output
/// stays bit-identical to the per-sample kernel. Lane-generic: `load`
/// is a plain slice read for f32 (unchanged codegen) and an
/// in-register dequantization for the f16/int8 planes.
#[inline]
fn gather_row_x4<L: WeightLane>(rows: [L; 4], indices: &[u32], init: [f32; 4], out: &mut [f32]) {
    let mut acc = [[0.0f32; 4]; 4];
    for (m, &b) in init.iter().enumerate() {
        acc[m][0] = b;
    }
    let mut chunks = indices.chunks_exact(4);
    for c in &mut chunks {
        let j = [c[0] as usize, c[1] as usize, c[2] as usize, c[3] as usize];
        for (m, row) in rows.iter().enumerate() {
            acc[m][0] += row.load(j[0]);
            acc[m][1] += row.load(j[1]);
            acc[m][2] += row.load(j[2]);
            acc[m][3] += row.load(j[3]);
        }
    }
    let rem = chunks.remainder();
    for m in 0..4 {
        let mut tail = (acc[m][0] + acc[m][1]) + (acc[m][2] + acc[m][3]);
        for &j in rem {
            tail += rows[m].load(j as usize);
        }
        out[m] = tail;
    }
}

fn sparse_matmul_impl(w: &Tensor, x: &SpikeMatrix, bias: Option<&Tensor>) -> Vec<f32> {
    let dims = w.shape().dims();
    let (m, k) = (dims[0], dims[1]);
    let wv = w.as_slice();
    let b = x.rows();
    let mut out = vec![0.0f32; b * m];
    let mut o = 0usize;
    if crate::simd::active() && crate::simd::indices_in_bounds(&x.indices, k) {
        // 8-row AVX2 tiles: each vector lane owns one output row, so the
        // per-output accumulation order — and the result — is
        // bit-identical to the scalar tiles below. When the batch
        // gathers at least one tile's worth of elements (nnz ≥ k), the
        // tile is transposed into a contiguous panel once per batch so
        // the inner loop trades 8-way gathers for contiguous loads;
        // matvec-shaped calls (nnz < k) keep the gather kernel, whose
        // setup is free.
        let pack = x.nnz() >= k;
        let mut panel = vec![0.0f32; if pack { crate::simd::ROW_LANES * k } else { 0 }];
        while o + crate::simd::ROW_LANES <= m {
            let rows = &wv[o * k..(o + crate::simd::ROW_LANES) * k];
            let mut init = [0.0f32; crate::simd::ROW_LANES];
            if let Some(bias) = bias {
                init.copy_from_slice(&bias.as_slice()[o..o + crate::simd::ROW_LANES]);
            }
            if pack {
                crate::simd::pack_rows8(rows, k, &mut panel);
                for r in 0..b {
                    let dst = &mut out[r * m + o..r * m + o + crate::simd::ROW_LANES];
                    crate::simd::matmul_panel8(&panel, k, x.row(r), &init, dst);
                }
            } else {
                for r in 0..b {
                    let dst = &mut out[r * m + o..r * m + o + crate::simd::ROW_LANES];
                    crate::simd::matvec_rows8(rows, k, x.row(r), &init, dst);
                }
            }
            o += crate::simd::ROW_LANES;
        }
    }
    matmul_lane_tiles(F32Lane(wv), m, k, x, bias, o, &mut out);
    out
}

fn sparse_matmul_lane_impl<L: WeightLane>(
    wv: L,
    m: usize,
    k: usize,
    x: &SpikeMatrix,
    bias: Option<&Tensor>,
) -> Vec<f32> {
    let mut out = vec![0.0f32; x.rows() * m];
    matmul_lane_tiles(wv, m, k, x, bias, 0, &mut out);
    out
}

/// The portable scalar tile sweep over output rows `o0..m` — the single
/// source of truth for GEMM semantics. Every dispatcher above finishes
/// here: either from row 0 (scalar mode) or from the first row the
/// 8-wide AVX2 tiles left over.
fn matmul_lane_tiles<L: WeightLane>(
    wv: L,
    m: usize,
    k: usize,
    x: &SpikeMatrix,
    bias: Option<&Tensor>,
    o0: usize,
    out: &mut [f32],
) {
    let b = x.rows();
    // Weight-row tiles of 4 stay L1-resident while all B index lists
    // gather against them — weight traffic is per *batch*, not per
    // sample, and each index load feeds 4 rows.
    let mut o = o0;
    while o + 4 <= m {
        let rows = [
            wv.slice(o * k, (o + 1) * k),
            wv.slice((o + 1) * k, (o + 2) * k),
            wv.slice((o + 2) * k, (o + 3) * k),
            wv.slice((o + 3) * k, (o + 4) * k),
        ];
        let init = match bias {
            Some(bias) => {
                let bv = bias.as_slice();
                [bv[o], bv[o + 1], bv[o + 2], bv[o + 3]]
            }
            None => [0.0; 4],
        };
        for r in 0..b {
            gather_row_x4(rows, x.row(r), init, &mut out[r * m + o..r * m + o + 4]);
        }
        o += 4;
    }
    while o < m {
        let row = wv.slice(o * k, (o + 1) * k);
        let init = bias.map(|bv| bv.as_slice()[o]).unwrap_or(0.0);
        for r in 0..b {
            out[r * m + o] = gather_row_lane(row, x.row(r), init);
        }
        o += 1;
    }
}

/// Batched sparse product `Y = S · Wᵀ` for a CSR spike batch `S` of
/// shape `[B, in]` and weights `[out, in]`, producing `[B, out]`.
///
/// Weight rows are processed in tiles of 4 that stay cache-hot across
/// the whole batch while each sample's index list gathers against them
/// (`gather_row_x4`); weight traffic is `out × in` per *batch*
/// instead of per sample — the GEMM amortization a per-sample matvec
/// cannot reach. Row `b` equals `sparse_matvec(w, rows[b])` bit for
/// bit.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for a non-matrix `w` and
/// [`TensorError::ShapeMismatch`] when the spike length differs from
/// the weight column count.
pub fn sparse_matmul(w: &Tensor, x: &SpikeMatrix) -> Result<Tensor> {
    let (m, _) = check_weight(w, x.cols(), "sparse_matmul")?;
    let out = sparse_matmul_impl(w, x, None);
    Tensor::from_vec(out, &[x.rows(), m])
}

/// [`sparse_matmul`] plus a per-output bias, matching the fused form
/// the spiking layers use (`acc` starts at `bias[o]`, exactly like
/// [`crate::sparse::sparse_matvec_bias`]).
///
/// # Errors
///
/// As [`sparse_matmul`], plus [`TensorError::ShapeMismatch`] when the
/// bias length differs from the weight row count.
pub fn sparse_matmul_bias(w: &Tensor, x: &SpikeMatrix, bias: &Tensor) -> Result<Tensor> {
    let (m, k) = check_weight(w, x.cols(), "sparse_matmul_bias")?;
    if bias.len() != m {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![m, k],
            rhs: bias.shape().dims().to_vec(),
            op: "sparse_matmul_bias",
        });
    }
    let out = sparse_matmul_impl(w, x, Some(bias));
    Tensor::from_vec(out, &[x.rows(), m])
}

/// The portable scalar reference for [`sparse_matmul_bias`]: always the
/// 4-row unrolled tile loop, never the runtime-dispatched AVX2 tiles.
///
/// [`sparse_matmul_bias`] is bit-identical to this by construction
/// (pinned by the `simd_equivalence` suite); `bench_simd` measures the
/// dispatched kernel against it. Production callers want
/// [`sparse_matmul_bias`], which picks the fastest equivalent path.
///
/// # Errors
///
/// As [`sparse_matmul_bias`].
pub fn sparse_matmul_bias_scalar(w: &Tensor, x: &SpikeMatrix, bias: &Tensor) -> Result<Tensor> {
    let (m, k) = check_weight(w, x.cols(), "sparse_matmul_bias")?;
    if bias.len() != m {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![m, k],
            rhs: bias.shape().dims().to_vec(),
            op: "sparse_matmul_bias",
        });
    }
    let out = sparse_matmul_lane_impl(F32Lane(w.as_slice()), m, k, x, Some(bias));
    Tensor::from_vec(out, &[x.rows(), m])
}

/// [`sparse_matmul_bias`] streaming a reduced-precision weight plane:
/// each weight is dequantized in-register and every accumulate stays in
/// f32, with the same 4-row tiling and gather order as the f32 kernel —
/// so the result is bit-identical to [`sparse_matmul_bias`] over the
/// plane's [`crate::plane::QuantizedPlane::dequantize`] tensor, and row
/// `b` bit-identical to
/// [`crate::sparse::sparse_matvec_bias_planed`] on that row.
///
/// This is the inference (4-wide reassociated) kernel only; recorded
/// training steps use the exact-order f32 kernels over the dequantized
/// tensors instead.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when the plane does not hold
/// `rows × cols` weights and [`TensorError::ShapeMismatch`] when the
/// spike or bias length disagrees with `shape`.
pub fn sparse_matmul_bias_planed(
    weights: PlaneView<'_>,
    shape: (usize, usize),
    x: &SpikeMatrix,
    bias: &Tensor,
) -> Result<Tensor> {
    let (m, k) = shape;
    check_planed(weights, shape, x, bias)?;
    let out = match weights {
        PlaneView::F16(bits) => matmul_planed_dispatch(F16Lane(bits), m, k, x, bias),
        PlaneView::Int8 { codes, levels } => {
            matmul_planed_dispatch(Int8Lane { codes, levels }, m, k, x, bias)
        }
    };
    Tensor::from_vec(out, &[x.rows(), m])
}

/// The portable scalar reference for [`sparse_matmul_bias_planed`]:
/// always the per-element in-register lane decode through the 4-row
/// tiles — no blocked dequantization, no AVX2. The dispatched kernel is
/// bit-identical to this by construction (pinned by `simd_equivalence`);
/// `bench_simd` measures against it.
///
/// # Errors
///
/// As [`sparse_matmul_bias_planed`].
pub fn sparse_matmul_bias_planed_scalar(
    weights: PlaneView<'_>,
    shape: (usize, usize),
    x: &SpikeMatrix,
    bias: &Tensor,
) -> Result<Tensor> {
    let (m, k) = shape;
    check_planed(weights, shape, x, bias)?;
    let out = match weights {
        PlaneView::F16(bits) => sparse_matmul_lane_impl(F16Lane(bits), m, k, x, Some(bias)),
        PlaneView::Int8 { codes, levels } => {
            sparse_matmul_lane_impl(Int8Lane { codes, levels }, m, k, x, Some(bias))
        }
    };
    Tensor::from_vec(out, &[x.rows(), m])
}

fn check_planed(
    weights: PlaneView<'_>,
    shape: (usize, usize),
    x: &SpikeMatrix,
    bias: &Tensor,
) -> Result<()> {
    let (m, k) = shape;
    if weights.len() != m * k {
        return Err(TensorError::LengthMismatch {
            expected: m * k,
            actual: weights.len(),
        });
    }
    if x.cols() != k {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![m, k],
            rhs: vec![x.cols()],
            op: "sparse_matmul_bias_planed",
        });
    }
    if bias.len() != m {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![m, k],
            rhs: bias.shape().dims().to_vec(),
            op: "sparse_matmul_bias_planed",
        });
    }
    Ok(())
}

/// Planed GEMM dispatcher: **blocked dequantization** when the batch
/// re-reads each weight tile often enough to amortize the decode.
///
/// The per-element lane path decodes one weight per gathered element —
/// `O(nnz)` decodes *per tile*, which is why the planed GEMM historically
/// regressed below the f32 kernel (int8 0.69×, f16 0.19×: the 255-entry
/// LUT walk / f16 bit-twiddle sat inside the innermost gather). Decoding
/// the tile into an f32 block once per batch costs `O(tile·k)` and drops
/// the inner loop to plain f32 gathers, so the block pays for itself
/// exactly when the batch gathers at least `k` elements (`nnz ≥ k`).
/// Matvec-shaped calls below that keep the in-register lane decode.
///
/// Bit-identity: `decode_into` reproduces `load` bit for bit, and the
/// f32 tile kernels run the same accumulation order as the lane tiles —
/// so both blocked paths equal the scalar lane path exactly.
fn matmul_planed_dispatch<L: WeightLane>(
    wv: L,
    m: usize,
    k: usize,
    x: &SpikeMatrix,
    bias: &Tensor,
) -> Vec<f32> {
    let b = x.rows();
    let mut out = vec![0.0f32; b * m];
    if k > 0 && x.nnz() >= k {
        if crate::simd::active() && crate::simd::indices_in_bounds(&x.indices, k) {
            const LANES: usize = crate::simd::ROW_LANES;
            let mut panel = vec![0.0f32; LANES * k];
            let mut o = 0usize;
            while o + LANES <= m {
                // Fused decode-and-pack: one pass from the stored
                // encoding straight to the index-major panel.
                wv.slice(o * k, (o + LANES) * k).pack_panel8(k, &mut panel);
                let mut init = [0.0f32; LANES];
                init.copy_from_slice(&bias.as_slice()[o..o + LANES]);
                for r in 0..b {
                    let dst = &mut out[r * m + o..r * m + o + LANES];
                    crate::simd::matmul_panel8(&panel, k, x.row(r), &init, dst);
                }
                o += LANES;
            }
            matmul_lane_tiles(wv, m, k, x, Some(bias), o, &mut out);
        } else {
            // Scalar blocked path: decode 4-row tiles and run the f32
            // gather tile over the block — identical accumulation order
            // to the per-element lane tile, decode hoisted out of the
            // gather.
            let mut block = vec![0.0f32; 4 * k];
            let bv = bias.as_slice();
            let mut o = 0usize;
            while o + 4 <= m {
                wv.slice(o * k, (o + 4) * k).decode_into(&mut block);
                let rows = [
                    F32Lane(&block[..k]),
                    F32Lane(&block[k..2 * k]),
                    F32Lane(&block[2 * k..3 * k]),
                    F32Lane(&block[3 * k..4 * k]),
                ];
                let init = [bv[o], bv[o + 1], bv[o + 2], bv[o + 3]];
                for r in 0..b {
                    gather_row_x4(rows, x.row(r), init, &mut out[r * m + o..r * m + o + 4]);
                }
                o += 4;
            }
            matmul_lane_tiles(wv, m, k, x, Some(bias), o, &mut out);
        }
        return out;
    }
    matmul_lane_tiles(wv, m, k, x, Some(bias), 0, &mut out);
    out
}

/// [`sparse_matmul_bias`] in the *dense accumulation order*: per output
/// element a single accumulator gathers the row's active columns in
/// ascending index order and the bias is added after the sum — the
/// batched form of [`crate::sparse::sparse_matvec_bias_exact`].
///
/// Row `b` is the same `f32` value per element as the per-sample dense
/// `matvec(w, row_b).add(bias)`, which is what lets the recorded
/// (training) batch forward keep sparse-tape numerics interchangeable
/// with the dense tape. The weight-row-outer loop keeps the GEMM
/// amortization: each weight row streams once per batch, gathered
/// against every row's index list while hot — only the 4-wide
/// accumulator split of the inference kernel is given up.
///
/// # Errors
///
/// As [`sparse_matmul_bias`].
pub fn sparse_matmul_bias_exact(w: &Tensor, x: &SpikeMatrix, bias: &Tensor) -> Result<Tensor> {
    let (m, k) = check_weight(w, x.cols(), "sparse_matmul_bias_exact")?;
    if bias.len() != m {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![m, k],
            rhs: bias.shape().dims().to_vec(),
            op: "sparse_matmul_bias_exact",
        });
    }
    let b = x.rows();
    let wv = w.as_slice();
    let bv = bias.as_slice();
    let mut out = vec![0.0f32; b * m];
    for o in 0..m {
        let row = &wv[o * k..(o + 1) * k];
        let bo = bv[o];
        for r in 0..b {
            let mut acc = 0.0f32;
            for &j in x.row(r) {
                acc += row[j as usize];
            }
            out[r * m + o] = acc + bo;
        }
    }
    Tensor::from_vec(out, &[b, m])
}

/// Dense batched fallback `Y = X · Wᵀ + b` for analog (non-binary)
/// planes: `x` is `[B, in]`, `w` is `[out, in]`, output `[B, out]`.
///
/// Each output element is a sequential row dot with the bias added
/// *after* the sum — the same order as the per-sample
/// `matvec(w, x).add(bias)` path, so row `b` is bit-identical to the
/// per-sample dense result.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
/// when the operands are not conforming matrices or the bias length
/// differs from the weight row count.
pub fn matmul_bt_bias(x: &Tensor, w: &Tensor, bias: &Tensor) -> Result<Tensor> {
    let xdims = x.shape().dims();
    if xdims.len() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: xdims.len(),
            op: "matmul_bt_bias",
        });
    }
    let (b, k) = (xdims[0], xdims[1]);
    let (m, _) = check_weight(w, k, "matmul_bt_bias")?;
    if bias.len() != m {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![m, k],
            rhs: bias.shape().dims().to_vec(),
            op: "matmul_bt_bias",
        });
    }
    let xv = x.as_slice();
    let wv = w.as_slice();
    let bv = bias.as_slice();
    let mut out = vec![0.0f32; b * m];
    for r in 0..b {
        let xrow = &xv[r * k..(r + 1) * k];
        let orow = &mut out[r * m..(r + 1) * m];
        for (o, slot) in orow.iter_mut().enumerate() {
            let wrow = &wv[o * k..(o + 1) * k];
            let mut acc = 0.0f32;
            for (&xi, &wi) in xrow.iter().zip(wrow) {
                acc += wi * xi;
            }
            *slot = acc + bv[o];
        }
    }
    Tensor::from_vec(out, &[b, m])
}

/// Batched scatter convolution: B stacked `[Cin·H·W]` spike planes into
/// a `[B, Cout·OH·OW]` block.
///
/// Each row scatters through the same unrolled stencil kernel as
/// [`crate::sparse::sparse_conv2d`], so row `b` matches the per-sample
/// result bit for bit; the conv weights (kilobytes) stay cache-hot
/// across the whole batch.
///
/// # Errors
///
/// As [`crate::sparse::sparse_conv2d`] per row.
pub fn sparse_conv2d_batch(
    x: &SpikeMatrix,
    in_hw: (usize, usize),
    weight: &Tensor,
    bias: &Tensor,
    spec: &Conv2dSpec,
) -> Result<Tensor> {
    crate::sparse::check_conv_geometry(x.cols(), in_hw, weight, spec)?;
    let (h, w) = in_hw;
    let (oh, ow) = spec.output_hw(h, w);
    let b = x.rows();
    let n = spec.out_channels * oh * ow;
    let mut out = vec![0.0f32; b * n];
    for (r, slot) in out.chunks_mut(n.max(1)).enumerate().take(b) {
        let row = SpikeVector::new(x.row(r).to_vec(), x.cols())?;
        sparse_conv2d_into(&row, in_hw, weight, bias, spec, slot)?;
    }
    Tensor::from_vec(out, &[b, n])
}

/// One event of the tile-sorted conv batch: the owning row's output
/// base offset plus the event's spatial coordinates. The input channel
/// is implicit — events are bucketed by channel before the sweep.
#[derive(Clone, Copy)]
struct SortedEvent {
    row_base: u32,
    iy: u32,
    ix: u32,
}

/// The shared loop geometry of one stride-1 patch sweep.
struct SweepGeometry {
    cout: usize,
    k: usize,
    oh: usize,
    ow: usize,
    ohw: usize,
    padding: usize,
}

/// Stride-1 patch sweep over one input-channel bucket: every event adds
/// the (kx-reversed) `[Cout, K, K]` weight patch `wrev` of the current
/// input channel onto its clipped output window with contiguous
/// row-adds.
///
/// `K` is the compile-time kernel side for the common sizes, so the
/// interior-event case (full `K`-wide rows) runs as fixed-length array
/// adds the compiler unrolls and vectorizes; border events take the
/// dynamic-length tail. Per output cell each event contributes exactly
/// once, so the patch traversal order is free — cells see their
/// contributing events in bucket order, which is the per-row ascending
/// `(ic, iy, ix)` order of the per-sample scatter.
fn stride1_patch_sweep<const K: usize>(
    out: &mut [f32],
    wrev: &[f32],
    bucket: &[SortedEvent],
    geo: &SweepGeometry,
) {
    let kk = K * K;
    let (cout, oh, ow, ohw, padding) = (geo.cout, geo.oh, geo.ow, geo.ohw, geo.padding);
    for ev in bucket {
        let iynum = ev.iy as usize + padding;
        let ixnum = ev.ix as usize + padding;
        // oy = iynum − ky ∈ [0, oh) and ox = ixnum − kx ∈ [0, ow)
        // bound the clipped output window.
        let oy_lo = iynum.saturating_sub(K - 1);
        let oy_hi = oh.min(iynum + 1);
        let ox_lo = ixnum.saturating_sub(K - 1);
        let ox_hi = ow.min(ixnum + 1);
        if oy_lo >= oy_hi || ox_lo >= ox_hi {
            continue;
        }
        let len = ox_hi - ox_lo;
        // Column j of the reversed row is kx = K−1−j, i.e. ox asc ⟺
        // j asc starting at j_lo (0 for interior events).
        let j_lo = (K - 1) - (ixnum - ox_lo);
        let row_base = ev.row_base as usize;
        if len == K {
            for oc in 0..cout {
                let obase = row_base + oc * ohw + ox_lo;
                let wbase = oc * kk;
                for oy in oy_lo..oy_hi {
                    let ky = iynum - oy;
                    let o = obase + oy * ow;
                    let s: &mut [f32; K] = (&mut out[o..o + K])
                        .try_into()
                        .expect("slice is exactly K long");
                    let w: &[f32; K] = (&wrev[wbase + ky * K..wbase + ky * K + K])
                        .try_into()
                        .expect("slice is exactly K long");
                    for j in 0..K {
                        s[j] += w[j];
                    }
                }
            }
        } else {
            for oc in 0..cout {
                let obase = row_base + oc * ohw + ox_lo;
                let wbase = oc * kk + j_lo;
                for oy in oy_lo..oy_hi {
                    let ky = iynum - oy;
                    let o = obase + oy * ow;
                    let wrow = &wrev[wbase + ky * K..wbase + ky * K + len];
                    for (slot, &wgt) in out[o..o + len].iter_mut().zip(wrow) {
                        *slot += wgt;
                    }
                }
            }
        }
    }
}

/// Dynamic-kernel-size fallback of [`stride1_patch_sweep`], identical
/// logic with runtime `k`.
fn stride1_patch_sweep_dyn(
    out: &mut [f32],
    wrev: &[f32],
    bucket: &[SortedEvent],
    geo: &SweepGeometry,
) {
    let (cout, k, oh, ow, ohw, padding) = (geo.cout, geo.k, geo.oh, geo.ow, geo.ohw, geo.padding);
    let kk = k * k;
    for ev in bucket {
        let iynum = ev.iy as usize + padding;
        let ixnum = ev.ix as usize + padding;
        let oy_lo = iynum.saturating_sub(k - 1);
        let oy_hi = oh.min(iynum + 1);
        let ox_lo = ixnum.saturating_sub(k - 1);
        let ox_hi = ow.min(ixnum + 1);
        if oy_lo >= oy_hi || ox_lo >= ox_hi {
            continue;
        }
        let len = ox_hi - ox_lo;
        let j_lo = (k - 1) - (ixnum - ox_lo);
        let row_base = ev.row_base as usize;
        for oc in 0..cout {
            let obase = row_base + oc * ohw + ox_lo;
            let wbase = oc * kk + j_lo;
            for oy in oy_lo..oy_hi {
                let ky = iynum - oy;
                let o = obase + oy * ow;
                let wrow = &wrev[wbase + ky * k..wbase + ky * k + len];
                for (slot, &wgt) in out[o..o + len].iter_mut().zip(wrow) {
                    *slot += wgt;
                }
            }
        }
    }
}

/// Event-**sorted** batched scatter convolution: B stacked `[Cin·H·W]`
/// spike planes into a `[B, Cout·OH·OW]` block, processing **all rows'
/// events per weight-stencil tile** instead of row by row.
///
/// The row-by-row scatter ([`sparse_conv2d_batch`]) re-walks the weight
/// stencil in event order for every row: each event touches
/// `Cout × K²` *strided* weight cells, so consecutive accumulates load
/// from `Cout` different cache lines even though the weights are cache
/// resident — which is why fused conv batches historically gained only
/// ~1.1×. This kernel reorders the work around the weights:
///
/// 1. **Sort pass** — a counting sort buckets every row's events by
///    input channel (the `[Cout, K, K]` stencil tile they drive),
///    preserving each row's ascending `(iy, ix)` order.
/// 2. **Tile sweep** — for each `(ic, ky)` kernel row, the valid
///    outputs of *all* B rows' bucketed events are collected once. For
///    stride-1 convs an event's whole kernel row collapses into one
///    **contiguous segment-add** (`ox = ix + padding − kx` is a
///    contiguous run), so each output channel reverses its k-float
///    weight row into a scratch buffer **once per batch** and streams
///    it across every segment with contiguous loads and stores on both
///    sides. Strided convs take a per-`(ic, ky, kx)` register-streamed
///    target list instead.
///
/// Weight traffic drops from `nnz × Cout × K²` strided loads to one
/// walk of the weight tensor per batch — the conv analogue of the
/// spike-plane GEMM's once-per-batch weight streaming — and the
/// per-event coordinate arithmetic shrinks from `K²` validity checks to
/// `K` window intersections, at the cost of one `O(nnz)` reordering
/// pass.
///
/// # Bit-for-bit equivalence
///
/// Row `b` equals [`crate::sparse::sparse_conv2d`] on that row's events
/// exactly. Per output cell `(r, oc, oy, ox)` the contributing
/// `(ic, ky, kx)` offsets biject onto the contributing input events
/// `(ic, iy, ix)` via `iy = oy·stride − padding + ky` (monotone in
/// `ky`, likewise `ix` in `kx`), so both kernels deliver each cell's
/// accumulates in ascending `(ic, iy, ix)` order — and within one
/// `(ic, ky, kx)` group every target cell receives exactly one add,
/// making the targets × `oc` loop order per cell irrelevant. The bias
/// fill precedes all accumulates in both kernels. Pinned by
/// `event_sorted_conv_batch_bitwise_matches_per_sample`.
///
/// # Errors
///
/// As [`sparse_conv2d_batch`].
pub fn sparse_conv2d_batch_sorted(
    x: &SpikeMatrix,
    in_hw: (usize, usize),
    weight: &Tensor,
    bias: &Tensor,
    spec: &Conv2dSpec,
) -> Result<Tensor> {
    let (h, w) = in_hw;
    let (oh, ow) = spec.output_hw(h, w);
    let n = spec.out_channels * oh * ow;
    let mut out = vec![0.0f32; x.rows() * n];
    sparse_conv2d_batch_sorted_into(x, in_hw, weight, bias, spec, &mut out)?;
    Tensor::from_vec(out, &[x.rows(), n])
}

/// Single-row event-sorted convolution: the B=1 form of
/// [`sparse_conv2d_batch_sorted`], returning `[Cout, OH, OW]` like
/// [`crate::sparse::sparse_conv2d`].
///
/// At B=1 the sort pass degenerates to bucketing one frame's events by
/// input channel, but the tile sweep's payoff survives: the per-event
/// scatter walks `Cout × K²` *strided* weight cells per event, while the
/// sorted sweep builds each channel's kx-reversed `[Cout, K, K]` patch
/// once and streams every event's clipped window as contiguous
/// segment-adds. That trades one `O(nnz)` reorder for contiguous loads
/// and stores on both sides — worthwhile for the paper's k=5 layers,
/// where each event otherwise touches 25 strided cells per output
/// channel. The plan layer exposes the choice through the same
/// `ConvBatchKernel` knob as the batch form, so latency-bound serving
/// and attack loops pick it per layer.
///
/// Bit-identical to [`crate::sparse::sparse_conv2d`] on the same events
/// (same argument as the batch kernel, specialized to one row).
///
/// # Errors
///
/// As [`crate::sparse::sparse_conv2d`].
pub fn sparse_conv2d_sorted(
    input: &SpikeVector,
    in_hw: (usize, usize),
    weight: &Tensor,
    bias: &Tensor,
    spec: &Conv2dSpec,
) -> Result<Tensor> {
    let x = SpikeMatrix::from_rows(std::slice::from_ref(input))?;
    crate::sparse::check_conv_geometry(x.cols(), in_hw, weight, spec)?;
    let (h, w) = in_hw;
    let (oh, ow) = spec.output_hw(h, w);
    let mut out = vec![0.0f32; spec.out_channels * oh * ow];
    conv_batch_sorted_lane(&x, in_hw, F32Lane(weight.as_slice()), bias, spec, &mut out)?;
    Tensor::from_vec(out, &[spec.out_channels, oh, ow])
}

/// [`sparse_conv2d_batch_sorted`] writing into a caller-provided
/// `[B · Cout·OH·OW]` buffer (fully overwritten: bias fill, then the
/// tile-sorted event sweep) — the form the fused batch engine drives so
/// admitted rows land directly in their slots of the current block.
///
/// # Errors
///
/// As [`sparse_conv2d_batch_sorted`], plus
/// [`TensorError::LengthMismatch`] when the buffer length differs from
/// `B × Cout·OH·OW`.
pub fn sparse_conv2d_batch_sorted_into(
    x: &SpikeMatrix,
    in_hw: (usize, usize),
    weight: &Tensor,
    bias: &Tensor,
    spec: &Conv2dSpec,
    out: &mut [f32],
) -> Result<()> {
    crate::sparse::check_conv_geometry(x.cols(), in_hw, weight, spec)?;
    conv_batch_sorted_lane(x, in_hw, F32Lane(weight.as_slice()), bias, spec, out)
}

/// [`sparse_conv2d_batch_sorted_into`] streaming a reduced-precision
/// weight plane. The only places the sorted sweep reads weights are the
/// once-per-batch reversed-patch build (stride 1) and the per-stencil
/// register load (generic stride); both dequantize in-register there,
/// so every inner sweep loop — and with it the accumulation order — is
/// exactly the f32 kernel's, making the result bit-identical to
/// [`sparse_conv2d_batch_sorted_into`] over the plane's
/// [`crate::plane::QuantizedPlane::dequantize`] tensor.
///
/// # Errors
///
/// As [`sparse_conv2d_batch_sorted_into`], with
/// [`TensorError::LengthMismatch`] when the plane does not hold
/// `Cout·Cin·K·K` weights.
pub fn sparse_conv2d_batch_sorted_planed_into(
    x: &SpikeMatrix,
    in_hw: (usize, usize),
    weights: PlaneView<'_>,
    bias: &Tensor,
    spec: &Conv2dSpec,
    out: &mut [f32],
) -> Result<()> {
    crate::sparse::check_conv_geometry_len(x.cols(), in_hw, weights.len(), spec)?;
    match weights {
        PlaneView::F16(bits) => conv_batch_sorted_lane(x, in_hw, F16Lane(bits), bias, spec, out),
        PlaneView::Int8 { codes, levels } => {
            conv_batch_sorted_lane(x, in_hw, Int8Lane { codes, levels }, bias, spec, out)
        }
    }
}

fn conv_batch_sorted_lane<L: WeightLane>(
    x: &SpikeMatrix,
    in_hw: (usize, usize),
    wv: L,
    bias: &Tensor,
    spec: &Conv2dSpec,
    out: &mut [f32],
) -> Result<()> {
    if bias.len() != spec.out_channels {
        return Err(TensorError::ShapeMismatch {
            lhs: bias.shape().dims().to_vec(),
            rhs: vec![spec.out_channels],
            op: "sparse_conv2d_batch_sorted bias",
        });
    }
    let (h, w) = in_hw;
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    let hw = h * w;
    let ohw = oh * ow;
    let n = spec.out_channels * ohw;
    let b = x.rows();
    if out.len() != b * n {
        return Err(TensorError::LengthMismatch {
            expected: b * n,
            actual: out.len(),
        });
    }
    let bv = bias.as_slice();
    for r in 0..b {
        let row = &mut out[r * n..(r + 1) * n];
        for (oc, &bias_oc) in bv.iter().enumerate() {
            row[oc * ohw..(oc + 1) * ohw].fill(bias_oc);
        }
    }
    if x.nnz() == 0 {
        return Ok(());
    }

    // Sort pass: counting sort by input channel. Rows are visited in
    // ascending order and each row's events arrive in ascending flat
    // (iy, ix) order, so every bucket preserves the per-row ascending
    // spatial order the bit-identity argument needs.
    let cin = spec.in_channels;
    let mut bucket_start = vec![0usize; cin + 1];
    for r in 0..b {
        for &flat in x.row(r) {
            bucket_start[flat as usize / hw + 1] += 1;
        }
    }
    for ic in 0..cin {
        bucket_start[ic + 1] += bucket_start[ic];
    }
    let mut events = vec![
        SortedEvent {
            row_base: 0,
            iy: 0,
            ix: 0
        };
        x.nnz()
    ];
    let mut cursor: Vec<usize> = bucket_start[..cin].to_vec();
    for r in 0..b {
        let row_base = (r * n) as u32;
        for &flat in x.row(r) {
            let flat = flat as usize;
            let ic = flat / hw;
            let rem = flat % hw;
            events[cursor[ic]] = SortedEvent {
                row_base,
                iy: (rem / w) as u32,
                ix: (rem % w) as u32,
            };
            cursor[ic] += 1;
        }
    }

    let wstride = cin * k * k;
    if spec.stride == 1 {
        // Stride-1 fast path (every paper conv): for one event and one
        // kernel row ky, the valid kx offsets map onto a *contiguous*
        // run of output columns (ox = ix + padding − kx), so the whole
        // kernel row collapses into one contiguous segment-add against
        // the reversed weight row. Per (ic, ky) the segments of all B
        // rows' bucketed events are collected once; per output channel
        // the k-float weight row is reversed into a scratch buffer
        // once per batch and streamed across every segment — contiguous
        // loads and stores on both sides, no per-kx coordinate work.
        let cout = spec.out_channels;
        let kk = k * k;
        let geo = SweepGeometry {
            cout,
            k,
            oh,
            ow,
            ohw,
            padding: spec.padding,
        };
        // The kx-reversed [Cout, K, K] weight patch of the current
        // input-channel tile, built once per tile per *batch* — the one
        // pass over the conv weights the sort pays for.
        let mut wrev = vec![0.0f32; cout * kk];
        for ic in 0..cin {
            let bucket = &events[bucket_start[ic]..bucket_start[ic + 1]];
            if bucket.is_empty() {
                continue;
            }
            for oc in 0..cout {
                let src = oc * wstride + ic * kk;
                let dst = oc * kk;
                for ky in 0..k {
                    for j in 0..k {
                        wrev[dst + ky * k + j] = wv.load(src + ky * k + (k - 1 - j));
                    }
                }
            }
            match k {
                1 => stride1_patch_sweep::<1>(out, &wrev, bucket, &geo),
                3 => stride1_patch_sweep::<3>(out, &wrev, bucket, &geo),
                5 => stride1_patch_sweep::<5>(out, &wrev, bucket, &geo),
                7 => stride1_patch_sweep::<7>(out, &wrev, bucket, &geo),
                _ => stride1_patch_sweep_dyn(out, &wrev, bucket, &geo),
            }
        }
        return Ok(());
    }

    // Generic-stride path: per (ic, ky, kx) stencil offset, collect the
    // valid output targets of all bucketed events once, then stream
    // each output channel's single weight cell across them from a
    // register.
    let mut targets: Vec<u32> = Vec::with_capacity(events.len());
    for ic in 0..cin {
        let bucket = &events[bucket_start[ic]..bucket_start[ic + 1]];
        if bucket.is_empty() {
            continue;
        }
        for ky in 0..k {
            for kx in 0..k {
                targets.clear();
                for ev in bucket {
                    let oy_num = ev.iy as usize + spec.padding;
                    if oy_num < ky {
                        continue;
                    }
                    let oy_off = oy_num - ky;
                    if !oy_off.is_multiple_of(spec.stride) {
                        continue;
                    }
                    let oy = oy_off / spec.stride;
                    if oy >= oh {
                        continue;
                    }
                    let ox_num = ev.ix as usize + spec.padding;
                    if ox_num < kx {
                        continue;
                    }
                    let ox_off = ox_num - kx;
                    if !ox_off.is_multiple_of(spec.stride) {
                        continue;
                    }
                    let ox = ox_off / spec.stride;
                    if ox >= ow {
                        continue;
                    }
                    targets.push(ev.row_base + (oy * ow + ox) as u32);
                }
                if targets.is_empty() {
                    continue;
                }
                let wbase = ic * k * k + ky * k + kx;
                for oc in 0..spec.out_channels {
                    let wgt = wv.load(oc * wstride + wbase);
                    let off = oc * ohw;
                    // Distinct targets within one (ic, ky, kx) group
                    // (two events reaching the same cell through the
                    // same offset would be the same event), so the
                    // 4-wide unroll reorders nothing per cell.
                    let mut chunks = targets.chunks_exact(4);
                    for c in &mut chunks {
                        out[c[0] as usize + off] += wgt;
                        out[c[1] as usize + off] += wgt;
                        out[c[2] as usize + off] += wgt;
                        out[c[3] as usize + off] += wgt;
                    }
                    for &t in chunks.remainder() {
                        out[t as usize + off] += wgt;
                    }
                }
            }
        }
    }
    Ok(())
}

fn check_pool_batch(x: &SpikeMatrix, dims: &[usize], k: usize) -> Result<(usize, usize, usize)> {
    if dims.len() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: dims.len(),
            op: "sparse_pool2d_batch",
        });
    }
    if k == 0 {
        return Err(TensorError::InvalidArgument {
            message: "pool window must be non-zero".into(),
        });
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    if x.cols() != c * h * w {
        return Err(TensorError::LengthMismatch {
            expected: c * h * w,
            actual: x.cols(),
        });
    }
    if h % k != 0 || w % k != 0 {
        return Err(TensorError::InvalidArgument {
            message: format!("pool window {k} does not divide input {h}x{w}"),
        });
    }
    Ok((c, h, w))
}

/// Batched event average pooling: B stacked `[C·H·W]` planes into
/// `[B, C·OH·OW]`, each active spike adding `1/k²` to its window.
///
/// # Errors
///
/// As [`crate::sparse::sparse_avg_pool2d`] for the shared `dims`/`k`.
pub fn sparse_avg_pool2d_batch(x: &SpikeMatrix, dims: &[usize], k: usize) -> Result<Tensor> {
    let (c, h, w) = check_pool_batch(x, dims, k)?;
    let (oh, ow) = (h / k, w / k);
    let inv = 1.0 / (k * k) as f32;
    let b = x.rows();
    let n = c * oh * ow;
    let mut out = vec![0.0f32; b * n];
    for r in 0..b {
        let base = r * n;
        for &flat in x.row(r) {
            let flat = flat as usize;
            let ch = flat / (h * w);
            let rem = flat % (h * w);
            let (iy, ix) = (rem / w, rem % w);
            out[base + ch * oh * ow + (iy / k) * ow + ix / k] += inv;
        }
    }
    Tensor::from_vec(out, &[b, n])
}

/// Batched event max pooling: a window maxes to `1.0` exactly when it
/// contains at least one spike. Forward value only (no argmax tape), so
/// the fused engine uses it exclusively on inference steps.
///
/// # Errors
///
/// As [`crate::sparse::sparse_max_pool2d`] for the shared `dims`/`k`.
pub fn sparse_max_pool2d_batch(x: &SpikeMatrix, dims: &[usize], k: usize) -> Result<Tensor> {
    let (c, h, w) = check_pool_batch(x, dims, k)?;
    let (oh, ow) = (h / k, w / k);
    let b = x.rows();
    let n = c * oh * ow;
    let mut out = vec![0.0f32; b * n];
    for r in 0..b {
        let base = r * n;
        for &flat in x.row(r) {
            let flat = flat as usize;
            let ch = flat / (h * w);
            let rem = flat % (h * w);
            let (iy, ix) = (rem / w, rem % w);
            out[base + ch * oh * ow + (iy / k) * ow + ix / k] = 1.0;
        }
    }
    Tensor::from_vec(out, &[b, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg;
    use crate::sparse::{
        sparse_avg_pool2d, sparse_conv2d, sparse_matvec, sparse_matvec_bias, sparse_max_pool2d,
    };

    fn binary_rows(b: usize, n: usize, every: usize) -> Vec<SpikeVector> {
        (0..b)
            .map(|r| {
                let data: Vec<f32> = (0..n)
                    .map(|i| if (i + r) % every == 0 { 1.0 } else { 0.0 })
                    .collect();
                SpikeVector::from_dense(&Tensor::from_vec(data, &[n]).unwrap()).unwrap()
            })
            .collect()
    }

    #[test]
    fn sparse_matmul_bias_exact_bitwise_matches_dense_rows() {
        let w =
            Tensor::from_vec((0..35).map(|i| (i as f32 * 0.29).sin()).collect(), &[5, 7]).unwrap();
        let bias = Tensor::from_vec(vec![0.5, -1.0, 0.25, 2.0, -0.125], &[5]).unwrap();
        // `every == 1` gives 100%-dense rows: the exact kernel must
        // still be value-identical to the dense per-row path there.
        for every in [1usize, 2, 3, 7] {
            let rows = binary_rows(3, 7, every);
            let batch = SpikeMatrix::from_rows(&rows).unwrap();
            let y = sparse_matmul_bias_exact(&w, &batch, &bias).unwrap();
            assert_eq!(y.shape().dims(), &[3, 5]);
            for (r, row) in rows.iter().enumerate() {
                let dense_row = row.to_dense(&[7]).unwrap();
                let reference = linalg::matvec(&w, &dense_row).unwrap().add(&bias).unwrap();
                assert_eq!(
                    &y.as_slice()[r * 5..(r + 1) * 5],
                    reference.as_slice(),
                    "every {every} row {r}"
                );
            }
        }
    }

    #[test]
    fn sparse_matmul_bias_exact_shape_errors() {
        let w = Tensor::zeros(&[3, 4]);
        let batch = SpikeMatrix::from_rows(&binary_rows(2, 4, 2)).unwrap();
        assert!(sparse_matmul_bias_exact(&w, &batch, &Tensor::zeros(&[2])).is_err());
        let short = SpikeMatrix::from_rows(&binary_rows(2, 3, 2)).unwrap();
        assert!(sparse_matmul_bias_exact(&w, &short, &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn csr_structure_roundtrips() {
        let rows = binary_rows(3, 10, 3);
        let m = SpikeMatrix::from_rows(&rows).unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 10);
        assert!(!m.is_empty());
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(m.row(r), row.indices());
        }
        assert_eq!(m.nnz(), rows.iter().map(SpikeVector::nnz).sum::<usize>());
        let dense = m.to_dense();
        assert_eq!(dense.shape().dims(), &[3, 10]);
        let back = SpikeMatrix::from_dense(&dense).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn from_rows_rejects_ragged_lengths() {
        let a = SpikeVector::new(vec![0], 4).unwrap();
        let b = SpikeVector::new(vec![1], 5).unwrap();
        assert!(SpikeMatrix::from_rows(&[a, b]).is_err());
    }

    #[test]
    fn empty_batch_is_well_formed() {
        let m = SpikeMatrix::from_rows(&[]).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.density(), 0.0);
        let w = Tensor::zeros(&[3, 0]);
        let y = sparse_matmul(&w, &m).unwrap();
        assert_eq!(y.shape().dims(), &[0, 3]);
    }

    #[test]
    fn from_dense_rejects_non_binary() {
        let t = Tensor::from_vec(vec![0.0, 0.5, 1.0, 0.0], &[2, 2]).unwrap();
        assert!(SpikeMatrix::from_dense(&t).is_none());
        let v = Tensor::zeros(&[4]);
        assert!(SpikeMatrix::from_dense(&v).is_none(), "rank-1 rejected");
    }

    #[test]
    fn matmul_rows_bitwise_match_per_sample_matvec() {
        let w = Tensor::from_vec(
            (0..7 * 13).map(|i| (i as f32 * 0.31).sin()).collect(),
            &[7, 13],
        )
        .unwrap();
        let bias = Tensor::from_vec((0..7).map(|i| i as f32 * 0.2 - 0.5).collect(), &[7]).unwrap();
        let rows = binary_rows(5, 13, 2);
        let batch = SpikeMatrix::from_rows(&rows).unwrap();
        let y = sparse_matmul(&w, &batch).unwrap();
        let yb = sparse_matmul_bias(&w, &batch, &bias).unwrap();
        assert_eq!(y.shape().dims(), &[5, 7]);
        for (r, row) in rows.iter().enumerate() {
            let per_sample = sparse_matvec(&w, row).unwrap();
            assert_eq!(&y.as_slice()[r * 7..(r + 1) * 7], per_sample.as_slice());
            let per_sample_bias = sparse_matvec_bias(&w, row, &bias).unwrap();
            assert_eq!(
                &yb.as_slice()[r * 7..(r + 1) * 7],
                per_sample_bias.as_slice()
            );
        }
    }

    #[test]
    fn matmul_shape_errors() {
        let batch = SpikeMatrix::from_rows(&binary_rows(2, 6, 2)).unwrap();
        assert!(sparse_matmul(&Tensor::zeros(&[3, 5]), &batch).is_err());
        assert!(sparse_matmul(&Tensor::zeros(&[6]), &batch).is_err());
        let w = Tensor::zeros(&[3, 6]);
        assert!(sparse_matmul_bias(&w, &batch, &Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn dense_fallback_rows_bitwise_match_matvec_add() {
        let w = Tensor::from_vec(
            (0..4 * 9).map(|i| (i as f32 * 0.77).cos()).collect(),
            &[4, 9],
        )
        .unwrap();
        let bias = Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.0], &[4]).unwrap();
        let xdata: Vec<f32> = (0..3 * 9).map(|i| (i as f32 * 0.41).sin() * 0.5).collect();
        let x = Tensor::from_vec(xdata, &[3, 9]).unwrap();
        let y = matmul_bt_bias(&x, &w, &bias).unwrap();
        assert_eq!(y.shape().dims(), &[3, 4]);
        for r in 0..3 {
            let xrow = Tensor::from_vec(x.as_slice()[r * 9..(r + 1) * 9].to_vec(), &[9]).unwrap();
            let per_sample = linalg::matvec(&w, &xrow).unwrap().add(&bias).unwrap();
            assert_eq!(&y.as_slice()[r * 4..(r + 1) * 4], per_sample.as_slice());
        }
        assert!(matmul_bt_bias(&x, &Tensor::zeros(&[4, 8]), &bias).is_err());
        assert!(matmul_bt_bias(&x, &w, &Tensor::zeros(&[5])).is_err());
        assert!(matmul_bt_bias(&Tensor::zeros(&[9]), &w, &bias).is_err());
    }

    #[test]
    fn conv_batch_rows_bitwise_match_per_sample() {
        let spec = Conv2dSpec {
            in_channels: 2,
            out_channels: 3,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let (h, w) = (6, 5);
        let weight = Tensor::from_vec(
            (0..3 * 2 * 9).map(|i| (i as f32 * 0.13).sin()).collect(),
            &[3, 2, 3, 3],
        )
        .unwrap();
        let bias = Tensor::from_vec(vec![0.5, -1.0, 0.25], &[3]).unwrap();
        let rows = binary_rows(4, 2 * h * w, 5);
        let batch = SpikeMatrix::from_rows(&rows).unwrap();
        let y = sparse_conv2d_batch(&batch, (h, w), &weight, &bias, &spec).unwrap();
        let n = 3 * h * w;
        assert_eq!(y.shape().dims(), &[4, n]);
        for (r, row) in rows.iter().enumerate() {
            let per_sample = sparse_conv2d(row, (h, w), &weight, &bias, &spec).unwrap();
            assert_eq!(&y.as_slice()[r * n..(r + 1) * n], per_sample.as_slice());
        }
    }

    #[test]
    fn event_sorted_conv_batch_bitwise_matches_per_sample() {
        // The tile-sorted sweep must reproduce the per-row scatter's
        // exact f32 values across strides, paddings, densities
        // (including empty and 100%-dense rows) and channel counts that
        // exercise the 4-wide target unroll and its remainder.
        for &(stride, padding, every) in &[
            (1usize, 0usize, 3usize),
            (1, 1, 2),
            (2, 0, 5),
            (2, 1, 1), // 100% dense rows
            (1, 2, 4),
        ] {
            for (out_channels, kernel) in [(1usize, 3usize), (3, 3), (4, 5), (6, 3), (2, 1), (3, 2)]
            {
                let spec = Conv2dSpec {
                    in_channels: 2,
                    out_channels,
                    kernel,
                    stride,
                    padding,
                };
                let (h, w) = (6, 5);
                let mut rows = binary_rows(5, 2 * h * w, every);
                rows.push(SpikeVector::new(vec![], 2 * h * w).unwrap()); // empty row
                let batch = SpikeMatrix::from_rows(&rows).unwrap();
                let weight = Tensor::from_vec(
                    (0..out_channels * 2 * kernel * kernel)
                        .map(|i| (i as f32 * 0.13).sin())
                        .collect(),
                    &[out_channels, 2, kernel, kernel],
                )
                .unwrap();
                let bias = Tensor::from_vec(
                    (0..out_channels).map(|i| i as f32 * 0.3 - 0.5).collect(),
                    &[out_channels],
                )
                .unwrap();
                let sorted =
                    sparse_conv2d_batch_sorted(&batch, (h, w), &weight, &bias, &spec).unwrap();
                let (oh, ow) = spec.output_hw(h, w);
                let n = out_channels * oh * ow;
                assert_eq!(sorted.shape().dims(), &[rows.len(), n]);
                for (r, row) in rows.iter().enumerate() {
                    let per_sample = sparse_conv2d(row, (h, w), &weight, &bias, &spec).unwrap();
                    assert_eq!(
                        &sorted.as_slice()[r * n..(r + 1) * n],
                        per_sample.as_slice(),
                        "stride {stride} pad {padding} every {every} \
                         oc {out_channels} k {kernel} row {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_row_sorted_conv_bitwise_matches_per_sample() {
        for &(stride, padding, every, kernel) in &[
            (1usize, 2usize, 3usize, 5usize), // the paper's k=5 shape
            (1, 1, 2, 3),
            (2, 0, 4, 3),
            (1, 0, 1, 1), // 100% dense
        ] {
            let spec = Conv2dSpec {
                in_channels: 2,
                out_channels: 3,
                kernel,
                stride,
                padding,
            };
            let (h, w) = (7, 6);
            let weight = Tensor::from_vec(
                (0..3 * 2 * kernel * kernel)
                    .map(|i| (i as f32 * 0.17).sin())
                    .collect(),
                &[3, 2, kernel, kernel],
            )
            .unwrap();
            let bias = Tensor::from_vec(vec![0.5, -1.0, 0.25], &[3]).unwrap();
            for row in binary_rows(3, 2 * h * w, every) {
                let sorted = sparse_conv2d_sorted(&row, (h, w), &weight, &bias, &spec).unwrap();
                let scatter = sparse_conv2d(&row, (h, w), &weight, &bias, &spec).unwrap();
                assert_eq!(sorted.shape().dims(), scatter.shape().dims());
                assert_eq!(
                    sorted.as_slice(),
                    scatter.as_slice(),
                    "stride {stride} pad {padding} every {every} k {kernel}"
                );
            }
        }
        // Empty frame: bias-only output.
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 2,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let empty = SpikeVector::new(vec![], 16).unwrap();
        let bias = Tensor::from_vec(vec![0.5, -0.25], &[2]).unwrap();
        let y = sparse_conv2d_sorted(&empty, (4, 4), &Tensor::ones(&[2, 1, 3, 3]), &bias, &spec)
            .unwrap();
        let reference =
            sparse_conv2d(&empty, (4, 4), &Tensor::ones(&[2, 1, 3, 3]), &bias, &spec).unwrap();
        assert_eq!(y.as_slice(), reference.as_slice());
    }

    #[test]
    fn matmul_scalar_twins_bitwise_match_dispatched() {
        use crate::plane::{QuantizedPlane, WeightPlane};
        let (m, k) = (13, 9); // m % 8 ≠ 0, m % 4 ≠ 0: exercises remainders
        let w = Tensor::from_vec(
            (0..m * k).map(|i| (i as f32 * 0.23).sin()).collect(),
            &[m, k],
        )
        .unwrap();
        let bias = Tensor::from_vec((0..m).map(|i| i as f32 * 0.1 - 0.3).collect(), &[m]).unwrap();
        for (b, every) in [(1usize, 3usize), (4, 1), (9, 2)] {
            let batch = SpikeMatrix::from_rows(&binary_rows(b, k, every)).unwrap();
            let fast = sparse_matmul_bias(&w, &batch, &bias).unwrap();
            let scalar = sparse_matmul_bias_scalar(&w, &batch, &bias).unwrap();
            assert_eq!(fast.as_slice(), scalar.as_slice(), "b {b} every {every}");
            for plane in [WeightPlane::F16, WeightPlane::Int8] {
                let q = QuantizedPlane::quantize(w.as_slice(), plane)
                    .unwrap()
                    .unwrap();
                let fast = sparse_matmul_bias_planed(q.view(), (m, k), &batch, &bias).unwrap();
                let scalar =
                    sparse_matmul_bias_planed_scalar(q.view(), (m, k), &batch, &bias).unwrap();
                for (a, r) in fast.as_slice().iter().zip(scalar.as_slice()) {
                    assert_eq!(a.to_bits(), r.to_bits(), "{plane} b {b} every {every}");
                }
            }
        }
    }

    #[test]
    fn event_sorted_conv_batch_validation() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 2,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let batch = SpikeMatrix::from_rows(&binary_rows(2, 16, 3)).unwrap();
        let bias = Tensor::zeros(&[2]);
        // Wrong weight shape.
        assert!(sparse_conv2d_batch_sorted(
            &batch,
            (4, 4),
            &Tensor::ones(&[2, 1, 2, 2]),
            &bias,
            &spec
        )
        .is_err());
        // Wrong bias length.
        assert!(sparse_conv2d_batch_sorted(
            &batch,
            (4, 4),
            &Tensor::ones(&[2, 1, 3, 3]),
            &Tensor::zeros(&[3]),
            &spec
        )
        .is_err());
        // Wrong output buffer length.
        let mut short = vec![0.0f32; 3];
        assert!(sparse_conv2d_batch_sorted_into(
            &batch,
            (4, 4),
            &Tensor::ones(&[2, 1, 3, 3]),
            &bias,
            &spec,
            &mut short
        )
        .is_err());
        // Empty batch is well-formed.
        let empty = SpikeMatrix::from_rows(&[]).unwrap();
        let y =
            sparse_conv2d_batch_sorted(&empty, (4, 4), &Tensor::ones(&[2, 1, 3, 3]), &bias, &spec);
        // 0-row SpikeMatrix has 0 cols, which cannot match 1x4x4.
        assert!(y.is_err());
    }

    #[test]
    fn planed_matmul_bitwise_matches_f32_over_dequantized_weights() {
        use crate::plane::{QuantizedPlane, WeightPlane};
        let (m, k) = (7, 13);
        let w = Tensor::from_vec(
            (0..m * k).map(|i| (i as f32 * 0.31).sin() * 2.0).collect(),
            &[m, k],
        )
        .unwrap();
        let bias = Tensor::from_vec((0..m).map(|i| i as f32 * 0.2 - 0.5).collect(), &[m]).unwrap();
        for plane in [WeightPlane::F16, WeightPlane::Int8] {
            let q = QuantizedPlane::quantize(w.as_slice(), plane)
                .unwrap()
                .unwrap();
            let dq = Tensor::from_vec(q.dequantize(), &[m, k]).unwrap();
            // Batch sizes around the 4-row tile boundary and densities
            // including 100%.
            for (b, every) in [(1usize, 2usize), (3, 1), (4, 3), (5, 13), (8, 2)] {
                let rows = binary_rows(b, k, every);
                let batch = SpikeMatrix::from_rows(&rows).unwrap();
                let planed = sparse_matmul_bias_planed(q.view(), (m, k), &batch, &bias).unwrap();
                let reference = sparse_matmul_bias(&dq, &batch, &bias).unwrap();
                for (a, r) in planed.as_slice().iter().zip(reference.as_slice()) {
                    assert_eq!(a.to_bits(), r.to_bits(), "{plane} b {b} every {every}");
                }
            }
        }
    }

    #[test]
    fn planed_matmul_shape_errors() {
        use crate::plane::{QuantizedPlane, WeightPlane};
        let q = QuantizedPlane::quantize(&[0.5; 12], WeightPlane::F16)
            .unwrap()
            .unwrap();
        let batch = SpikeMatrix::from_rows(&binary_rows(2, 4, 2)).unwrap();
        assert!(sparse_matmul_bias_planed(q.view(), (3, 4), &batch, &Tensor::zeros(&[3])).is_ok());
        assert!(sparse_matmul_bias_planed(q.view(), (4, 4), &batch, &Tensor::zeros(&[4])).is_err());
        assert!(sparse_matmul_bias_planed(q.view(), (3, 4), &batch, &Tensor::zeros(&[2])).is_err());
        let wide = SpikeMatrix::from_rows(&binary_rows(2, 5, 2)).unwrap();
        assert!(sparse_matmul_bias_planed(q.view(), (3, 4), &wide, &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn planed_sorted_conv_bitwise_matches_f32_over_dequantized_weights() {
        use crate::plane::{QuantizedPlane, WeightPlane};
        for &(stride, padding, every) in
            &[(1usize, 1usize, 3usize), (1, 0, 2), (2, 1, 4), (1, 2, 1)]
        {
            let spec = Conv2dSpec {
                in_channels: 2,
                out_channels: 3,
                kernel: 3,
                stride,
                padding,
            };
            let (h, w) = (6, 5);
            let weight = Tensor::from_vec(
                (0..3 * 2 * 9).map(|i| (i as f32 * 0.13).sin()).collect(),
                &[3, 2, 3, 3],
            )
            .unwrap();
            let bias = Tensor::from_vec(vec![0.5, -1.0, 0.25], &[3]).unwrap();
            let rows = binary_rows(4, 2 * h * w, every);
            let batch = SpikeMatrix::from_rows(&rows).unwrap();
            let (oh, ow) = spec.output_hw(h, w);
            let n = 3 * oh * ow;
            for plane in [WeightPlane::F16, WeightPlane::Int8] {
                let q = QuantizedPlane::quantize(weight.as_slice(), plane)
                    .unwrap()
                    .unwrap();
                let dq = Tensor::from_vec(q.dequantize(), &[3, 2, 3, 3]).unwrap();
                let mut planed = vec![0.0f32; 4 * n];
                sparse_conv2d_batch_sorted_planed_into(
                    &batch,
                    (h, w),
                    q.view(),
                    &bias,
                    &spec,
                    &mut planed,
                )
                .unwrap();
                let reference =
                    sparse_conv2d_batch_sorted(&batch, (h, w), &dq, &bias, &spec).unwrap();
                for (a, r) in planed.iter().zip(reference.as_slice()) {
                    assert_eq!(
                        a.to_bits(),
                        r.to_bits(),
                        "{plane} stride {stride} pad {padding} every {every}"
                    );
                }
            }
        }
    }

    #[test]
    fn planed_sorted_conv_validation() {
        use crate::plane::{QuantizedPlane, WeightPlane};
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 2,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let batch = SpikeMatrix::from_rows(&binary_rows(2, 16, 3)).unwrap();
        let bias = Tensor::zeros(&[2]);
        // Plane length disagrees with Cout·Cin·K·K.
        let short = QuantizedPlane::quantize(&[1.0; 17], WeightPlane::Int8)
            .unwrap()
            .unwrap();
        let mut out = vec![0.0f32; 2 * 2 * 16];
        assert!(sparse_conv2d_batch_sorted_planed_into(
            &batch,
            (4, 4),
            short.view(),
            &bias,
            &spec,
            &mut out
        )
        .is_err());
        let ok = QuantizedPlane::quantize(&[1.0; 18], WeightPlane::Int8)
            .unwrap()
            .unwrap();
        assert!(sparse_conv2d_batch_sorted_planed_into(
            &batch,
            (4, 4),
            ok.view(),
            &bias,
            &spec,
            &mut out
        )
        .is_ok());
        // Wrong bias length.
        assert!(sparse_conv2d_batch_sorted_planed_into(
            &batch,
            (4, 4),
            ok.view(),
            &Tensor::zeros(&[3]),
            &spec,
            &mut out
        )
        .is_err());
    }

    #[test]
    fn pool_batch_rows_bitwise_match_per_sample() {
        let dims = [2usize, 4, 4];
        let rows = binary_rows(3, 2 * 4 * 4, 3);
        let batch = SpikeMatrix::from_rows(&rows).unwrap();
        let avg = sparse_avg_pool2d_batch(&batch, &dims, 2).unwrap();
        let max = sparse_max_pool2d_batch(&batch, &dims, 2).unwrap();
        let n = 2 * 2 * 2;
        for (r, row) in rows.iter().enumerate() {
            let pa = sparse_avg_pool2d(row, &dims, 2).unwrap();
            let pm = sparse_max_pool2d(row, &dims, 2).unwrap();
            assert_eq!(&avg.as_slice()[r * n..(r + 1) * n], pa.as_slice());
            assert_eq!(&max.as_slice()[r * n..(r + 1) * n], pm.as_slice());
        }
    }

    #[test]
    fn pool_batch_validation() {
        let batch = SpikeMatrix::from_rows(&binary_rows(2, 16, 2)).unwrap();
        assert!(sparse_avg_pool2d_batch(&batch, &[1, 4, 4], 0).is_err());
        assert!(sparse_avg_pool2d_batch(&batch, &[1, 5, 4], 2).is_err());
        assert!(sparse_avg_pool2d_batch(&batch, &[4, 4], 2).is_err());
        assert!(sparse_max_pool2d_batch(&batch, &[1, 4, 5], 2).is_err());
        assert!(sparse_max_pool2d_batch(&batch, &[2, 4, 4], 2).is_err());
    }
}
