//! 2-D convolution and pooling kernels (forward and backward).
//!
//! All kernels operate on single samples in `[C, H, W]` layout; batching is
//! handled by the layer abstractions in `axsnn-core`, which is the natural
//! granularity for a time-stepped SNN simulator (each time step processes
//! one spike frame). Convolution uses direct loops with padded coordinate
//! arithmetic; for the small feature maps of the paper's networks this is
//! faster than materializing im2col buffers.

use crate::{Result, Tensor, TensorError};

/// Hyper-parameters of a 2-D convolution.
///
/// # Example
///
/// ```
/// use axsnn_tensor::conv::Conv2dSpec;
///
/// let spec = Conv2dSpec { in_channels: 1, out_channels: 8, kernel: 5, stride: 1, padding: 2 };
/// assert_eq!(spec.output_hw(28, 28), (28, 28));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels (filters).
    pub out_channels: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding applied to both spatial dimensions.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Computes the output spatial size for an `h × w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        (oh, ow)
    }

    fn validate(&self, input: &Tensor, weight: &Tensor) -> Result<(usize, usize)> {
        if self.kernel == 0 || self.stride == 0 {
            return Err(TensorError::InvalidArgument {
                message: "conv2d kernel and stride must be non-zero".into(),
            });
        }
        let idims = input.shape().dims();
        if idims.len() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                actual: idims.len(),
                op: "conv2d",
            });
        }
        if idims[0] != self.in_channels {
            return Err(TensorError::ShapeMismatch {
                lhs: idims.to_vec(),
                rhs: vec![self.in_channels],
                op: "conv2d input channels",
            });
        }
        let wdims = weight.shape().dims();
        let expected = [
            self.out_channels,
            self.in_channels,
            self.kernel,
            self.kernel,
        ];
        if wdims != expected {
            return Err(TensorError::ShapeMismatch {
                lhs: wdims.to_vec(),
                rhs: expected.to_vec(),
                op: "conv2d weight",
            });
        }
        let (h, w) = (idims[1], idims[2]);
        if h + 2 * self.padding < self.kernel || w + 2 * self.padding < self.kernel {
            return Err(TensorError::InvalidArgument {
                message: format!(
                    "conv2d kernel {} larger than padded input {}x{}",
                    self.kernel,
                    h + 2 * self.padding,
                    w + 2 * self.padding
                ),
            });
        }
        Ok((h, w))
    }
}

/// Forward 2-D convolution: `input [Cin,H,W] → output [Cout,OH,OW]`.
///
/// # Errors
///
/// Returns an error when the input is not rank-3, channel counts or the
/// weight shape `[Cout,Cin,K,K]` disagree with `spec`, or the kernel does
/// not fit in the padded input.
///
/// # Example
///
/// ```
/// use axsnn_tensor::conv::{conv2d, Conv2dSpec};
/// use axsnn_tensor::Tensor;
///
/// # fn main() -> axsnn_tensor::Result<()> {
/// let spec = Conv2dSpec { in_channels: 1, out_channels: 1, kernel: 3, stride: 1, padding: 0 };
/// let input = Tensor::ones(&[1, 5, 5]);
/// let weight = Tensor::ones(&[1, 1, 3, 3]);
/// let bias = Tensor::zeros(&[1]);
/// let out = conv2d(&input, &weight, &bias, &spec)?;
/// assert_eq!(out.shape().dims(), &[1, 3, 3]);
/// assert_eq!(out.at(&[0, 0, 0])?, 9.0);
/// # Ok(())
/// # }
/// ```
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    let (h, w) = spec.validate(input, weight)?;
    if bias.len() != spec.out_channels {
        return Err(TensorError::ShapeMismatch {
            lhs: bias.shape().dims().to_vec(),
            rhs: vec![spec.out_channels],
            op: "conv2d bias",
        });
    }
    let (oh, ow) = spec.output_hw(h, w);
    let iv = input.as_slice();
    let wv = weight.as_slice();
    let bv = bias.as_slice();
    let k = spec.kernel;
    let mut out = vec![0.0f32; spec.out_channels * oh * ow];

    for oc in 0..spec.out_channels {
        let wbase_oc = oc * spec.in_channels * k * k;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = bv[oc];
                let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
                let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
                for ic in 0..spec.in_channels {
                    let ibase = ic * h * w;
                    let wbase = wbase_oc + ic * k * k;
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let irow = ibase + iy as usize * w;
                        let wrow = wbase + ky * k;
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            acc += iv[irow + ix as usize] * wv[wrow + kx];
                        }
                    }
                }
                out[oc * oh * ow + oy * ow + ox] = acc;
            }
        }
    }
    Tensor::from_vec(out, &[spec.out_channels, oh, ow])
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient with respect to the input, `[Cin,H,W]`.
    pub input: Tensor,
    /// Gradient with respect to the weights, `[Cout,Cin,K,K]`.
    pub weight: Tensor,
    /// Gradient with respect to the bias, `[Cout]`.
    pub bias: Tensor,
}

/// Backward pass of [`conv2d`].
///
/// Given `grad_out = ∂L/∂output`, computes the three gradients of the
/// convolution with respect to input, weight and bias.
///
/// # Errors
///
/// Returns an error when `input`/`weight` disagree with `spec` or
/// `grad_out` does not have the forward output shape.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: &Conv2dSpec,
) -> Result<Conv2dGrads> {
    let (h, w) = spec.validate(input, weight)?;
    let (oh, ow) = spec.output_hw(h, w);
    let odims = grad_out.shape().dims();
    if odims != [spec.out_channels, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            lhs: odims.to_vec(),
            rhs: vec![spec.out_channels, oh, ow],
            op: "conv2d_backward grad_out",
        });
    }

    let iv = input.as_slice();
    let wv = weight.as_slice();
    let gv = grad_out.as_slice();
    let k = spec.kernel;
    let mut gi = vec![0.0f32; spec.in_channels * h * w];
    let mut gw = vec![0.0f32; spec.out_channels * spec.in_channels * k * k];
    let mut gb = vec![0.0f32; spec.out_channels];

    for oc in 0..spec.out_channels {
        let wbase_oc = oc * spec.in_channels * k * k;
        for oy in 0..oh {
            for ox in 0..ow {
                let g = gv[oc * oh * ow + oy * ow + ox];
                if g == 0.0 {
                    continue;
                }
                gb[oc] += g;
                let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
                let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
                for ic in 0..spec.in_channels {
                    let ibase = ic * h * w;
                    let wbase = wbase_oc + ic * k * k;
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let irow = ibase + iy as usize * w;
                        let wrow = wbase + ky * k;
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let ii = irow + ix as usize;
                            gw[wrow + kx] += g * iv[ii];
                            gi[ii] += g * wv[wrow + kx];
                        }
                    }
                }
            }
        }
    }

    Ok(Conv2dGrads {
        input: Tensor::from_vec(gi, &[spec.in_channels, h, w])?,
        weight: Tensor::from_vec(gw, &[spec.out_channels, spec.in_channels, k, k])?,
        bias: Tensor::from_vec(gb, &[spec.out_channels])?,
    })
}

/// Forward average pooling with a square `k × k` window and stride `k`.
///
/// # Errors
///
/// Returns an error for non-rank-3 inputs, `k == 0`, or spatial dimensions
/// not divisible by `k`.
///
/// # Example
///
/// ```
/// use axsnn_tensor::{conv::avg_pool2d, Tensor};
///
/// # fn main() -> axsnn_tensor::Result<()> {
/// let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 4, 4])?;
/// let p = avg_pool2d(&x, 2)?;
/// assert_eq!(p.shape().dims(), &[1, 2, 2]);
/// assert_eq!(p.at(&[0, 0, 0])?, 2.5);
/// # Ok(())
/// # }
/// ```
pub fn avg_pool2d(input: &Tensor, k: usize) -> Result<Tensor> {
    let (c, h, w) = pool_check(input, k)?;
    let (oh, ow) = (h / k, w / k);
    let iv = input.as_slice();
    let inv = 1.0 / (k * k) as f32;
    let mut out = vec![0.0f32; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ky in 0..k {
                    let irow = ch * h * w + (oy * k + ky) * w + ox * k;
                    for kx in 0..k {
                        acc += iv[irow + kx];
                    }
                }
                out[ch * oh * ow + oy * ow + ox] = acc * inv;
            }
        }
    }
    Tensor::from_vec(out, &[c, oh, ow])
}

/// Backward pass of [`avg_pool2d`]: spreads each output gradient evenly
/// over its `k × k` input window.
///
/// # Errors
///
/// Returns an error when `grad_out` is not the pooled shape of a valid
/// `[C, H, W]` input of size `input_dims`.
pub fn avg_pool2d_backward(grad_out: &Tensor, input_dims: &[usize], k: usize) -> Result<Tensor> {
    if input_dims.len() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input_dims.len(),
            op: "avg_pool2d_backward",
        });
    }
    let (c, h, w) = (input_dims[0], input_dims[1], input_dims[2]);
    if k == 0 || h % k != 0 || w % k != 0 {
        return Err(TensorError::InvalidArgument {
            message: format!("pool window {k} does not divide input {h}x{w}"),
        });
    }
    let (oh, ow) = (h / k, w / k);
    if grad_out.shape().dims() != [c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_out.shape().dims().to_vec(),
            rhs: vec![c, oh, ow],
            op: "avg_pool2d_backward grad_out",
        });
    }
    let gv = grad_out.as_slice();
    let inv = 1.0 / (k * k) as f32;
    let mut gi = vec![0.0f32; c * h * w];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let g = gv[ch * oh * ow + oy * ow + ox] * inv;
                for ky in 0..k {
                    let irow = ch * h * w + (oy * k + ky) * w + ox * k;
                    for kx in 0..k {
                        gi[irow + kx] += g;
                    }
                }
            }
        }
    }
    Tensor::from_vec(gi, input_dims)
}

/// Result of [`max_pool2d`]: the pooled tensor plus argmax indices for the
/// backward pass.
#[derive(Debug, Clone)]
pub struct MaxPool2dOutput {
    /// Pooled output `[C, H/k, W/k]`.
    pub output: Tensor,
    /// Flat input index of the winning element per output position.
    pub argmax: Vec<usize>,
}

/// Forward max pooling with a square `k × k` window and stride `k`.
///
/// # Errors
///
/// Same conditions as [`avg_pool2d`].
pub fn max_pool2d(input: &Tensor, k: usize) -> Result<MaxPool2dOutput> {
    let (c, h, w) = pool_check(input, k)?;
    let (oh, ow) = (h / k, w / k);
    let iv = input.as_slice();
    let mut out = vec![0.0f32; c * oh * ow];
    let mut arg = vec![0usize; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_i = 0usize;
                for ky in 0..k {
                    let irow = ch * h * w + (oy * k + ky) * w + ox * k;
                    for kx in 0..k {
                        let v = iv[irow + kx];
                        if v > best {
                            best = v;
                            best_i = irow + kx;
                        }
                    }
                }
                let o = ch * oh * ow + oy * ow + ox;
                out[o] = best;
                arg[o] = best_i;
            }
        }
    }
    Ok(MaxPool2dOutput {
        output: Tensor::from_vec(out, &[c, oh, ow])?,
        argmax: arg,
    })
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the
/// input element that won the forward max.
///
/// # Errors
///
/// Returns an error when `grad_out` length disagrees with `argmax`.
pub fn max_pool2d_backward(
    grad_out: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
) -> Result<Tensor> {
    if grad_out.len() != argmax.len() {
        return Err(TensorError::LengthMismatch {
            expected: argmax.len(),
            actual: grad_out.len(),
        });
    }
    let mut gi = Tensor::zeros(input_dims);
    let volume = gi.len();
    {
        let gis = gi.as_mut_slice();
        for (&idx, &g) in argmax.iter().zip(grad_out.as_slice()) {
            if idx >= volume {
                return Err(TensorError::IndexOutOfBounds {
                    index: vec![idx],
                    shape: input_dims.to_vec(),
                });
            }
            gis[idx] += g;
        }
    }
    Ok(gi)
}

fn pool_check(input: &Tensor, k: usize) -> Result<(usize, usize, usize)> {
    let dims = input.shape().dims();
    if dims.len() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: dims.len(),
            op: "pool2d",
        });
    }
    if k == 0 {
        return Err(TensorError::InvalidArgument {
            message: "pool window must be non-zero".into(),
        });
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    if h % k != 0 || w % k != 0 {
        return Err(TensorError::InvalidArgument {
            message: format!("pool window {k} does not divide input {h}x{w}"),
        });
    }
    Ok((c, h, w))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(cin: usize, cout: usize, k: usize, stride: usize, pad: usize) -> Conv2dSpec {
        Conv2dSpec {
            in_channels: cin,
            out_channels: cout,
            kernel: k,
            stride,
            padding: pad,
        }
    }

    #[test]
    fn conv_identity_kernel() {
        // 1x1 kernel of weight 1 reproduces the input.
        let s = spec(1, 1, 1, 1, 0);
        let x = Tensor::from_vec((0..9).map(|i| i as f32).collect(), &[1, 3, 3]).unwrap();
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let b = Tensor::zeros(&[1]);
        let y = conv2d(&x, &w, &b, &s).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn conv_padding_preserves_size() {
        let s = spec(1, 2, 3, 1, 1);
        let x = Tensor::ones(&[1, 4, 4]);
        let w = Tensor::ones(&[2, 1, 3, 3]);
        let b = Tensor::from_vec(vec![0.0, 10.0], &[2]).unwrap();
        let y = conv2d(&x, &w, &b, &s).unwrap();
        assert_eq!(y.shape().dims(), &[2, 4, 4]);
        // Center position sees all 9 ones; corner sees 4.
        assert_eq!(y.at(&[0, 1, 1]).unwrap(), 9.0);
        assert_eq!(y.at(&[0, 0, 0]).unwrap(), 4.0);
        assert_eq!(y.at(&[1, 0, 0]).unwrap(), 14.0);
    }

    #[test]
    fn conv_stride() {
        let s = spec(1, 1, 2, 2, 0);
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 4, 4]).unwrap();
        let w = Tensor::ones(&[1, 1, 2, 2]);
        let b = Tensor::zeros(&[1]);
        let y = conv2d(&x, &w, &b, &s).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2, 2]);
        assert_eq!(y.at(&[0, 0, 0]).unwrap(), 0.0 + 1.0 + 4.0 + 5.0);
    }

    #[test]
    fn conv_rejects_bad_weight_shape() {
        let s = spec(1, 1, 3, 1, 0);
        let x = Tensor::ones(&[1, 5, 5]);
        let w = Tensor::ones(&[1, 1, 2, 2]);
        let b = Tensor::zeros(&[1]);
        assert!(conv2d(&x, &w, &b, &s).is_err());
    }

    /// Finite-difference check of the conv backward pass.
    #[test]
    fn conv_backward_matches_finite_difference() {
        let s = spec(2, 3, 3, 1, 1);
        let mut rng_state = 12345u64;
        let mut next = || {
            // Small deterministic LCG so the test needs no rand dependency.
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let x = Tensor::from_vec((0..2 * 4 * 4).map(|_| next()).collect(), &[2, 4, 4]).unwrap();
        let w = Tensor::from_vec((0..3 * 2 * 9).map(|_| next()).collect(), &[3, 2, 3, 3]).unwrap();
        let b = Tensor::from_vec((0..3).map(|_| next()).collect(), &[3]).unwrap();

        // Loss = sum(output); grad_out = ones.
        let y = conv2d(&x, &w, &b, &s).unwrap();
        let go = Tensor::ones(y.shape().dims());
        let grads = conv2d_backward(&x, &w, &go, &s).unwrap();

        let eps = 1e-2f32;
        // Check a scattering of input coordinates.
        for &i in &[0usize, 5, 13, 21, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fp = conv2d(&xp, &w, &b, &s).unwrap().sum();
            let fm = conv2d(&xm, &w, &b, &s).unwrap().sum();
            let num = (fp - fm) / (2.0 * eps);
            let ana = grads.input.as_slice()[i];
            assert!(
                (num - ana).abs() < 1e-2,
                "input grad mismatch at {i}: num {num} vs ana {ana}"
            );
        }
        // And weight coordinates.
        for &i in &[0usize, 7, 17, 29, 53] {
            let mut wp = w.clone();
            wp.as_mut_slice()[i] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[i] -= eps;
            let fp = conv2d(&x, &wp, &b, &s).unwrap().sum();
            let fm = conv2d(&x, &wm, &b, &s).unwrap().sum();
            let num = (fp - fm) / (2.0 * eps);
            let ana = grads.weight.as_slice()[i];
            assert!(
                (num - ana).abs() < 1e-2,
                "weight grad mismatch at {i}: num {num} vs ana {ana}"
            );
        }
        // Bias gradient equals the number of output positions per channel.
        let (oh, ow) = s.output_hw(4, 4);
        for g in grads.bias.as_slice() {
            assert!((g - (oh * ow) as f32).abs() < 1e-4);
        }
    }

    #[test]
    fn avg_pool_and_backward() {
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 4, 4]).unwrap();
        let p = avg_pool2d(&x, 2).unwrap();
        assert_eq!(p.as_slice(), &[2.5, 4.5, 10.5, 12.5]);
        let go = Tensor::ones(&[1, 2, 2]);
        let gi = avg_pool2d_backward(&go, &[1, 4, 4], 2).unwrap();
        // Every input element receives 1/4 of its window's gradient.
        assert!(gi.as_slice().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn avg_pool_rejects_indivisible() {
        let x = Tensor::zeros(&[1, 5, 4]);
        assert!(avg_pool2d(&x, 2).is_err());
    }

    #[test]
    fn max_pool_and_backward() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
            &[1, 4, 4],
        )
        .unwrap();
        let mp = max_pool2d(&x, 2).unwrap();
        assert_eq!(mp.output.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
        let go = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).unwrap();
        let gi = max_pool2d_backward(&go, &mp.argmax, &[1, 4, 4]).unwrap();
        assert_eq!(gi.at(&[0, 1, 1]).unwrap(), 1.0); // 4.0 won
        assert_eq!(gi.at(&[0, 1, 3]).unwrap(), 2.0); // 8.0 won
        assert_eq!(gi.at(&[0, 3, 1]).unwrap(), 3.0); // 12.0 won
        assert_eq!(gi.at(&[0, 3, 3]).unwrap(), 4.0); // 16.0 won
        assert_eq!(gi.sum(), 10.0);
    }

    #[test]
    fn output_hw_formula() {
        let s = spec(1, 1, 5, 1, 0);
        assert_eq!(s.output_hw(28, 28), (24, 24));
        let s2 = spec(1, 1, 5, 1, 2);
        assert_eq!(s2.output_hw(28, 28), (28, 28));
    }
}
