use std::error::Error;
use std::fmt;

/// Error type returned by fallible tensor operations.
///
/// # Example
///
/// ```
/// use axsnn_tensor::{Tensor, TensorError};
///
/// let err = Tensor::from_vec(vec![1.0; 3], &[2, 2]).unwrap_err();
/// assert!(matches!(err, TensorError::LengthMismatch { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The flat data length does not match the product of the shape dims.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// The tensor does not have the rank required by the operation.
    RankMismatch {
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the tensor supplied.
        actual: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// An index is out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending multi-dimensional index.
        index: Vec<usize>,
        /// The tensor shape the index was checked against.
        shape: Vec<usize>,
    },
    /// A parameter has an invalid value (zero kernel size, empty shape, ...).
    InvalidArgument {
        /// Human-readable description of the violated precondition.
        message: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => write!(f, "{op} requires rank {expected}, got rank {actual}"),
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidArgument { message } => {
                write!(f, "invalid argument: {message}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let e = TensorError::LengthMismatch {
            expected: 4,
            actual: 3,
        };
        assert_eq!(e.to_string(), "data length 3 does not match shape volume 4");
    }

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            lhs: vec![2, 2],
            rhs: vec![3, 2],
            op: "add",
        };
        assert!(e.to_string().contains("add"));
        assert!(e.to_string().contains("[2, 2]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
