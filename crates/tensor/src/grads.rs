//! Deterministic per-shard gradient accumulation for parallel backward
//! passes.
//!
//! A parallel minibatch backward cannot let workers race on one shared
//! gradient accumulator — and even lock-free designs would make the f32
//! accumulation order (and therefore the result) depend on the thread
//! count. This module fixes both: the minibatch is partitioned into
//! **row shards whose boundaries depend only on the batch size**, each
//! shard accumulates into its own [`GradShard`] buffers, and
//! [`reduce_in_order`] folds the shards in ascending shard order — a
//! fixed left-leaning reduction tree. Threads only decide *which worker
//! computes which shard*, never what is summed with what, so gradients
//! are bit-identical for every thread count.

use crate::{Result, Tensor, TensorError};

/// One worker-shard's gradient accumulation buffers: per layer slot an
/// optional `(weight_grad, bias_grad)` pair (parameterless layers hold
/// `None`).
#[derive(Debug, Clone, Default)]
pub struct GradShard {
    slots: Vec<Option<(Tensor, Tensor)>>,
}

impl GradShard {
    /// Builds a zeroed shard from per-slot `(weight_dims, bias_dims)`
    /// shapes (`None` for parameterless slots).
    pub fn zeros(shapes: &[Option<(Vec<usize>, Vec<usize>)>]) -> GradShard {
        GradShard {
            slots: shapes
                .iter()
                .map(|s| {
                    s.as_ref()
                        .map(|(w, b)| (Tensor::zeros(w), Tensor::zeros(b)))
                })
                .collect(),
        }
    }

    /// Number of layer slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when the shard holds no slots (the [`Default`] state).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The per-slot gradient pairs.
    pub fn slots(&self) -> &[Option<(Tensor, Tensor)>] {
        &self.slots
    }

    /// Mutable access to one slot's `(weight_grad, bias_grad)` pair.
    pub fn slot_mut(&mut self, i: usize) -> Option<&mut (Tensor, Tensor)> {
        self.slots.get_mut(i).and_then(|s| s.as_mut())
    }

    /// Elementwise accumulation `self += other`, slot by slot in stack
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the two shards do not
    /// share the same slot structure.
    pub fn accumulate(&mut self, other: &GradShard) -> Result<()> {
        if self.slots.len() != other.slots.len() {
            return Err(TensorError::ShapeMismatch {
                lhs: vec![self.slots.len()],
                rhs: vec![other.slots.len()],
                op: "grad shard accumulate",
            });
        }
        for (mine, theirs) in self.slots.iter_mut().zip(&other.slots) {
            match (mine, theirs) {
                (Some((wa, ba)), Some((wb, bb))) => {
                    add_assign(wa, wb, "grad shard accumulate")?;
                    add_assign(ba, bb, "grad shard accumulate")?;
                }
                (None, None) => {}
                _ => {
                    return Err(TensorError::ShapeMismatch {
                        lhs: vec![self.slots.len()],
                        rhs: vec![other.slots.len()],
                        op: "grad shard accumulate",
                    })
                }
            }
        }
        Ok(())
    }
}

fn add_assign(acc: &mut Tensor, delta: &Tensor, op: &'static str) -> Result<()> {
    if acc.shape().dims() != delta.shape().dims() {
        return Err(TensorError::ShapeMismatch {
            lhs: acc.shape().dims().to_vec(),
            rhs: delta.shape().dims().to_vec(),
            op,
        });
    }
    for (a, &d) in acc.as_mut_slice().iter_mut().zip(delta.as_slice()) {
        *a += d;
    }
    Ok(())
}

/// Folds shards in ascending shard order into the first one — the fixed
/// left-leaning reduction tree that makes parallel gradient sums
/// independent of which worker produced which shard. Returns `None` for
/// an empty input.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the shards disagree on
/// slot structure.
pub fn reduce_in_order(shards: Vec<GradShard>) -> Result<Option<GradShard>> {
    let mut iter = shards.into_iter();
    let mut acc = match iter.next() {
        Some(first) => first,
        None => return Ok(None),
    };
    for shard in iter {
        acc.accumulate(&shard)?;
    }
    Ok(Some(acc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes() -> Vec<Option<(Vec<usize>, Vec<usize>)>> {
        vec![
            Some((vec![2, 3], vec![2])),
            None,
            Some((vec![1, 2], vec![1])),
        ]
    }

    fn shard_with(v: f32) -> GradShard {
        let mut s = GradShard::zeros(&shapes());
        for i in 0..s.len() {
            if let Some((w, b)) = s.slot_mut(i) {
                w.as_mut_slice().fill(v);
                b.as_mut_slice().fill(v * 2.0);
            }
        }
        s
    }

    #[test]
    fn zeros_mirrors_slot_structure() {
        let s = GradShard::zeros(&shapes());
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(s.slots()[1].is_none());
        assert_eq!(s.slots()[0].as_ref().unwrap().0.shape().dims(), &[2, 3]);
        assert!(GradShard::default().is_empty());
    }

    #[test]
    fn reduce_folds_in_ascending_order() {
        let reduced = reduce_in_order(vec![shard_with(1.0), shard_with(2.0), shard_with(4.0)])
            .unwrap()
            .unwrap();
        let (w, b) = reduced.slots()[0].as_ref().unwrap();
        assert!(w.as_slice().iter().all(|&v| v == 7.0));
        assert!(b.as_slice().iter().all(|&v| v == 14.0));
        assert!(reduce_in_order(Vec::new()).unwrap().is_none());
    }

    #[test]
    fn accumulate_rejects_mismatched_structure() {
        let mut a = shard_with(1.0);
        assert!(a.accumulate(&GradShard::default()).is_err());
        let other = GradShard::zeros(&[
            Some((vec![3, 2], vec![2])),
            None,
            Some((vec![1, 2], vec![1])),
        ]);
        assert!(a.accumulate(&other).is_err());
    }
}
