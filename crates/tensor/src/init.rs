//! Weight initializers.
//!
//! All initializers take an explicit RNG so experiments are reproducible
//! bit-for-bit from a seed — the experiment harness in `axsnn-bench`
//! depends on this.

use crate::Tensor;
use rand::Rng;

/// Uniform initialization in `[-limit, limit]`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let t = axsnn_tensor::init::uniform(&mut rng, &[4, 4], 0.1);
/// assert!(t.as_slice().iter().all(|v| v.abs() <= 0.1));
/// ```
pub fn uniform<R: Rng>(rng: &mut R, dims: &[usize], limit: f32) -> Tensor {
    let volume: usize = dims.iter().product();
    let data = (0..volume).map(|_| rng.gen_range(-limit..=limit)).collect();
    Tensor::from_vec(data, dims).expect("volume matches by construction")
}

/// Kaiming/He-style uniform initialization with `limit = sqrt(6 / fan_in)`.
///
/// `fan_in` of zero falls back to a limit of 1.0 rather than dividing by
/// zero, which can only happen for degenerate zero-sized layers.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let w = axsnn_tensor::init::kaiming_uniform(&mut rng, &[8, 1, 5, 5], 25);
/// assert_eq!(w.len(), 200);
/// ```
pub fn kaiming_uniform<R: Rng>(rng: &mut R, dims: &[usize], fan_in: usize) -> Tensor {
    let limit = if fan_in == 0 {
        1.0
    } else {
        (6.0 / fan_in as f32).sqrt()
    };
    uniform(rng, dims, limit)
}

/// Standard-normal initialization scaled by `std`.
///
/// Uses a Box–Muller transform so only a uniform RNG is required.
pub fn normal<R: Rng>(rng: &mut R, dims: &[usize], std: f32) -> Tensor {
    let volume: usize = dims.iter().product();
    let mut data = Vec::with_capacity(volume);
    while data.len() < volume {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < volume {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(data, dims).expect("volume matches by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform(&mut rng, &[1000], 0.25);
        assert!(t.as_slice().iter().all(|v| v.abs() <= 0.25));
        // Not degenerate: spread over both signs.
        assert!(t.as_slice().iter().any(|&v| v > 0.1));
        assert!(t.as_slice().iter().any(|&v| v < -0.1));
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = uniform(&mut StdRng::seed_from_u64(42), &[64], 1.0);
        let b = uniform(&mut StdRng::seed_from_u64(42), &[64], 1.0);
        assert_eq!(a, b);
        let c = uniform(&mut StdRng::seed_from_u64(43), &[64], 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn kaiming_limit_shrinks_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = kaiming_uniform(&mut rng, &[1000], 600);
        let limit = (6.0f32 / 600.0).sqrt();
        assert!(t.as_slice().iter().all(|v| v.abs() <= limit + 1e-6));
    }

    #[test]
    fn kaiming_zero_fan_in_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = kaiming_uniform(&mut rng, &[4], 0);
        assert!(t.as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn normal_statistics_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = normal(&mut rng, &[10_000], 2.0);
        let mean = t.mean();
        let var = t.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn normal_odd_volume() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = normal(&mut rng, &[7], 1.0);
        assert_eq!(t.len(), 7);
    }
}
