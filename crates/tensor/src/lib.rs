//! Dense `f32` tensor substrate for the AxSNN reproduction.
//!
//! This crate provides the numerical foundation that the rest of the
//! workspace builds on: an owned, contiguous, row-major [`Tensor`] with
//! shape metadata, elementwise and reduction operations, matrix
//! multiplication ([`linalg::matmul`]), 2-D convolution and pooling kernels
//! (forward *and* backward passes, [`conv`]), event-driven sparse spike
//! kernels whose cost scales with activity instead of layer size
//! ([`sparse`]), batched spike-plane GEMM kernels that amortize weight
//! traffic across B samples ([`batched`]), deterministic per-shard
//! gradient buffers for thread-count-invariant parallel backward passes
//! ([`grads`]), weight initializers ([`init`]), reduced-precision
//! weight storage planes that let the gather-bound kernels stream
//! int8/f16 weights while accumulating in f32 ([`plane`]), and a
//! runtime-dispatched AVX2 backend for the gather-bound kernels whose
//! results stay bit-identical to the portable scalar truth path
//! ([`simd`], `AXSNN_NO_SIMD` forces scalar).
//!
//! The paper's authors used a Python deep-learning stack as their substrate;
//! no equivalent mature crate exists offline, so this crate implements the
//! required kernels from scratch. Everything is deterministic given a seeded
//! RNG, which the experiment harness relies on for reproducibility.
//!
//! # Provenance
//!
//! The dense substrate is a seed module; [`sparse`] landed in PR 1,
//! [`batched`] in PR 2 (event-sorted batched conv in PR 5), the
//! backward kernels and [`grads`] in PRs 3–4, and [`plane`] in PR 8.
//! Every fast kernel is pinned value- or bit-identical to its naive
//! reference by an equivalence suite: the in-crate sparse/dense
//! property tests (PR 1), plus `batched_equivalence`,
//! `grad_equivalence`, `plan_equivalence` and `quant_equivalence` in
//! `axsnn-core`'s `tests/`.
//!
//! # Example
//!
//! ```
//! use axsnn_tensor::Tensor;
//!
//! # fn main() -> Result<(), axsnn_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::full(&[2, 2], 0.5);
//! let c = a.add(&b)?;
//! assert_eq!(c.as_slice(), &[1.5, 2.5, 3.5, 4.5]);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the [`simd`] module is the one sanctioned
// `unsafe` island (std::arch intrinsics behind runtime detection); every
// other module stays safe Rust and cannot opt out silently — an
// `allow(unsafe_code)` outside `simd.rs` is a review flag.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod shape;
mod tensor;

pub mod batched;
pub mod conv;
pub mod grads;
pub mod init;
pub mod linalg;
pub mod ops;
pub mod plane;
pub mod simd;
pub mod sparse;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience result alias used throughout this crate.
///
/// # Example
///
/// ```
/// fn make() -> axsnn_tensor::Result<axsnn_tensor::Tensor> {
///     axsnn_tensor::Tensor::from_vec(vec![0.0; 4], &[2, 2])
/// }
/// assert!(make().is_ok());
/// ```
pub type Result<T> = std::result::Result<T, TensorError>;
