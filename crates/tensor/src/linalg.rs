//! Matrix operations: GEMM, transposed matmul variants and outer products.
//!
//! These are the only dense linear-algebra kernels the SNN stack needs:
//! `matmul` for fully-connected forward passes, the `*_at` / `*_bt`
//! transposed variants for the corresponding backward passes, and `outer`
//! for rank-1 weight-gradient accumulation.

use crate::{Result, Tensor, TensorError};

fn check_rank2(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    let dims = t.shape().dims();
    if dims.len() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: dims.len(),
            op,
        });
    }
    Ok((dims[0], dims[1]))
}

/// Computes `C = A · B` for row-major rank-2 tensors.
///
/// Uses an ikj loop order so the inner loop streams contiguously through
/// both `B` and `C`, which is the standard cache-friendly layout for
/// row-major GEMM without blocking.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either input is not rank-2 and
/// [`TensorError::ShapeMismatch`] when the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use axsnn_tensor::{linalg, Tensor};
///
/// # fn main() -> axsnn_tensor::Result<()> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// assert_eq!(linalg::matmul(&a, &i)?.as_slice(), a.as_slice());
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_thresholded(a, b, 0.0)
}

/// Computes `C = Aᵀ · B`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::ShapeMismatch`]
/// analogous to [`matmul`].
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = check_rank2(a, "matmul_at")?;
    let (k2, n) = check_rank2(b, "matmul_at")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
            op: "matmul_at",
        });
    }
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    for p in 0..k {
        let arow = &av[p * m..(p + 1) * m];
        let brow = &bv[p * n..(p + 1) * n];
        for (i, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let crow = &mut out[i * n..(i + 1) * n];
            for (c, &bval) in crow.iter_mut().zip(brow) {
                *c += aval * bval;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Computes `C = A · Bᵀ`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::ShapeMismatch`]
/// analogous to [`matmul`].
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_rank2(a, "matmul_bt")?;
    let (n, k2) = check_rank2(b, "matmul_bt")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
            op: "matmul_bt",
        });
    }
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bv[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Transposes a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
///
/// # Example
///
/// ```
/// use axsnn_tensor::{linalg, Tensor};
///
/// # fn main() -> axsnn_tensor::Result<()> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// let t = linalg::transpose(&a)?;
/// assert_eq!(t.shape().dims(), &[3, 2]);
/// assert_eq!(t.at(&[2, 1])?, 6.0);
/// # Ok(())
/// # }
/// ```
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    let (m, n) = check_rank2(a, "transpose")?;
    let av = a.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = av[i * n + j];
        }
    }
    Tensor::from_vec(out, &[n, m])
}

/// Outer product of two rank-1 tensors: `C[i][j] = a[i]·b[j]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-vector inputs.
pub fn outer(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 1 {
        return Err(TensorError::RankMismatch {
            expected: 1,
            actual: a.shape().rank(),
            op: "outer",
        });
    }
    if b.shape().rank() != 1 {
        return Err(TensorError::RankMismatch {
            expected: 1,
            actual: b.shape().rank(),
            op: "outer",
        });
    }
    let m = a.len();
    let n = b.len();
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[i * n + j] = av[i] * bv[j];
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Transposed matrix–vector product `y = Aᵀ·x` without materializing
/// the transpose: `y[j] = Σ_i a[i][j]·x[i]`.
///
/// Per output element the accumulation runs over `i` ascending with a
/// single accumulator — exactly the order `matvec(&transpose(a), x)`
/// produces — so results are value-identical to the
/// transpose-then-matvec path this replaces on the BPTT hot loop (one
/// `[out,in]` transpose allocation per layer per time step). Rows with
/// an exactly-zero coefficient contribute only exact zeros and are
/// skipped; the surviving rows process in blocks of four with the
/// per-cell accumulator held in a register across the block (same add
/// sequence, a quarter of the output loads/stores).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
/// when inputs are not a compatible matrix/vector pair.
///
/// # Example
///
/// ```
/// use axsnn_tensor::{linalg, Tensor};
///
/// # fn main() -> axsnn_tensor::Result<()> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let x = Tensor::from_vec(vec![1.0, 1.0], &[2])?;
/// assert_eq!(linalg::matvec_t(&a, &x)?.as_slice(), &[4.0, 6.0]);
/// # Ok(())
/// # }
/// ```
pub fn matvec_t(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    matvec_t_thresholded(a, x, 0.0)
}

/// [`matvec_t`] with input-gradient sparsification: rows whose
/// coefficient satisfies `|x[i]| < eps` (or is exactly zero) are
/// skipped entirely, so the weight traffic scales with the number of
/// surviving coefficients instead of the full row count.
///
/// With `eps == 0.0` only exact zeros are skipped — those contribute
/// `±0.0` adds that cannot change any accumulator value — so the result
/// equals [`matvec_t`]'s dense accumulation value-for-value. Surviving
/// rows accumulate in ascending `i` order with a single accumulator per
/// output cell, the same order regardless of how many rows the
/// threshold removed.
///
/// # Errors
///
/// As [`matvec_t`].
pub fn matvec_t_thresholded(a: &Tensor, x: &Tensor, eps: f32) -> Result<Tensor> {
    let (m, n) = check_rank2(a, "matvec_t")?;
    if x.shape().rank() != 1 || x.len() != m {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().dims().to_vec(),
            rhs: x.shape().dims().to_vec(),
            op: "matvec_t",
        });
    }
    let mut out = vec![0.0f32; n];
    matvec_t_rows(a.as_slice(), n, x.as_slice(), eps, &mut out);
    Tensor::from_vec(out, &[n])
}

/// Slice-level core of [`matvec_t_thresholded`]: accumulates
/// `out[j] += a[i][j]·x[i]` over the admitted rows of `a` (row length
/// `n`), four rows per pass. `out` is accumulated into, not overwritten.
fn matvec_t_rows(av: &[f32], n: usize, xv: &[f32], eps: f32, out: &mut [f32]) {
    // The skip set matches the sibling thresholded kernels: exact zeros
    // and sub-threshold magnitudes only — NaN coefficients stay in, so
    // a diverged gradient still surfaces as NaN instead of being
    // silently masked.
    let active: Vec<usize> = (0..xv.len())
        .filter(|&i| xv[i] != 0.0 && (xv[i].abs() >= eps || xv[i].is_nan()))
        .collect();
    let mut quads = active.chunks_exact(4);
    for q in quads.by_ref() {
        let (r0, r1, r2, r3) = (
            &av[q[0] * n..q[0] * n + n],
            &av[q[1] * n..q[1] * n + n],
            &av[q[2] * n..q[2] * n + n],
            &av[q[3] * n..q[3] * n + n],
        );
        let (x0, x1, x2, x3) = (xv[q[0]], xv[q[1]], xv[q[2]], xv[q[3]]);
        for (j, o) in out.iter_mut().enumerate() {
            // Four sequential adds into one register accumulator: the
            // identical per-cell add order as four single-row passes.
            let mut acc = *o;
            acc += r0[j] * x0;
            acc += r1[j] * x1;
            acc += r2[j] * x2;
            acc += r3[j] * x3;
            *o = acc;
        }
    }
    for &i in quads.remainder() {
        let row = &av[i * n..(i + 1) * n];
        let xi = xv[i];
        for (o, &w) in out.iter_mut().zip(row) {
            *o += w * xi;
        }
    }
}

/// Shard-level transposed product `GI = G·A` for a `[rows, m]` gradient
/// block against a `[m, n]` matrix, with `|g| < eps` entries skipped —
/// the input-gradient kernel of the parallel minibatch backward.
///
/// The matrix streams **once per call** (outer loop over its rows),
/// amortizing weight traffic across every row of the shard, while each
/// output cell still accumulates over `p` ascending with a single
/// accumulator — the same per-cell order as a per-row
/// [`matvec_t_thresholded`], so results are value-identical to it (and,
/// at `eps == 0.0`, to the dense `G·A` GEMM that skips exact zeros).
///
/// `out` must be `rows × n` and is overwritten.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for a non-matrix `a` and
/// [`TensorError::ShapeMismatch`] when `g` is not `rows × m` or `out`
/// is not `rows × n`.
pub fn matvec_t_block_thresholded_into(
    a: &Tensor,
    g: &[f32],
    rows: usize,
    eps: f32,
    out: &mut [f32],
) -> Result<()> {
    let (m, n) = check_rank2(a, "matvec_t_block")?;
    if g.len() != rows * m || out.len() != rows * n {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![rows, m],
            rhs: vec![g.len() / m.max(1), m],
            op: "matvec_t_block",
        });
    }
    out.fill(0.0);
    let av = a.as_slice();
    for p in 0..m {
        let arow = &av[p * n..(p + 1) * n];
        for r in 0..rows {
            let gv = g[r * m + p];
            if gv == 0.0 || gv.abs() < eps {
                continue;
            }
            let orow = &mut out[r * n..(r + 1) * n];
            for (o, &w) in orow.iter_mut().zip(arow) {
                *o += gv * w;
            }
        }
    }
    Ok(())
}

/// [`matmul`] with `|a[i][k]| < eps` entries skipped in addition to the
/// exact zeros `matmul` already skips — the thresholded input-gradient
/// GEMM `GI = G·W` of the batched ANN backward. At `eps == 0.0` the
/// skip set and per-cell accumulation order equal [`matmul`]'s, so the
/// result is value-identical to it.
///
/// # Errors
///
/// As [`matmul`].
pub fn matmul_thresholded(a: &Tensor, b: &Tensor, eps: f32) -> Result<Tensor> {
    let (m, k) = check_rank2(a, "matmul")?;
    let (k2, n) = check_rank2(b, "matmul")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
            op: "matmul",
        });
    }
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let aik = av[i * k + p];
            if aik == 0.0 || aik.abs() < eps {
                continue;
            }
            let brow = &bv[p * n..(p + 1) * n];
            let crow = &mut out[i * n..(i + 1) * n];
            for (c, &bval) in crow.iter_mut().zip(brow) {
                *c += aik * bval;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// In-place rank-1 accumulation `acc[i][j] += a[i]·b[j]` — the weight
/// gradient update of a linear layer, without the two tensor
/// allocations of `acc.add(&outer(a, b))`.
///
/// Each accumulator cell receives exactly one add of the identical
/// product, so results are bit-identical to the allocate-then-add form.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-vector `a`/`b` and
/// [`TensorError::ShapeMismatch`] when `acc` is not `[a.len, b.len]`.
pub fn outer_acc(acc: &mut Tensor, a: &Tensor, b: &Tensor) -> Result<()> {
    if a.shape().rank() != 1 || b.shape().rank() != 1 {
        return Err(TensorError::RankMismatch {
            expected: 1,
            actual: a.shape().rank().max(b.shape().rank()),
            op: "outer_acc",
        });
    }
    let (m, n) = (a.len(), b.len());
    if acc.shape().dims() != [m, n] {
        return Err(TensorError::ShapeMismatch {
            lhs: acc.shape().dims().to_vec(),
            rhs: vec![m, n],
            op: "outer_acc",
        });
    }
    let av = a.as_slice();
    let bv = b.as_slice();
    let accv = acc.as_mut_slice();
    for (i, &ai) in av.iter().enumerate() {
        let row = &mut accv[i * n..(i + 1) * n];
        for (c, &bj) in row.iter_mut().zip(bv) {
            *c += ai * bj;
        }
    }
    Ok(())
}

/// Matrix–vector product `y = A·x` for a rank-2 `a` and rank-1 `x`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
/// when inputs are not a compatible matrix/vector pair.
///
/// # Example
///
/// ```
/// use axsnn_tensor::{linalg, Tensor};
///
/// # fn main() -> axsnn_tensor::Result<()> {
/// let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 2.0], &[2, 2])?;
/// let x = Tensor::from_vec(vec![3.0, 4.0], &[2])?;
/// assert_eq!(linalg::matvec(&a, &x)?.as_slice(), &[3.0, 8.0]);
/// # Ok(())
/// # }
/// ```
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    let (m, k) = check_rank2(a, "matvec")?;
    if x.shape().rank() != 1 || x.len() != k {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().dims().to_vec(),
            rhs: x.shape().dims().to_vec(),
            op: "matvec",
        });
    }
    let av = a.as_slice();
    let xv = x.as_slice();
    let mut out = vec![0.0f32; m];
    for i in 0..m {
        let row = &av[i * k..(i + 1) * k];
        out[i] = row.iter().zip(xv).map(|(&w, &v)| w * v).sum();
    }
    Tensor::from_vec(out, &[m])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: Vec<f32>, dims: &[usize]) -> Tensor {
        Tensor::from_vec(data, dims).unwrap()
    }

    #[test]
    fn matmul_small() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rect() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[4.0, 5.0, 10.0, 11.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t(vec![0.0; 6], &[2, 3]);
        let b = t(vec![0.0; 6], &[2, 3]);
        assert!(matmul(&a, &b).is_err());
        let v = t(vec![0.0; 3], &[3]);
        assert!(matmul(&v, &b).is_err());
    }

    #[test]
    fn matmul_at_equals_explicit_transpose() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(vec![1.0, -1.0, 2.0, 0.5, 0.0, 3.0], &[3, 2]);
        let via_at = matmul_at(&a, &b).unwrap();
        let explicit = matmul(&transpose(&a).unwrap(), &b).unwrap();
        assert_eq!(via_at, explicit);
    }

    #[test]
    fn matmul_bt_equals_explicit_transpose() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![1.0, -1.0, 0.5, 2.0], &[2, 2]);
        let via_bt = matmul_bt(&a, &b).unwrap();
        let explicit = matmul(&a, &transpose(&b).unwrap()).unwrap();
        assert_eq!(via_bt, explicit);
    }

    #[test]
    fn transpose_involution() {
        let a = t((0..12).map(|i| i as f32).collect(), &[3, 4]);
        let tt = transpose(&transpose(&a).unwrap()).unwrap();
        assert_eq!(tt, a);
    }

    #[test]
    fn outer_product() {
        let a = t(vec![1.0, 2.0], &[2]);
        let b = t(vec![3.0, 4.0, 5.0], &[3]);
        let o = outer(&a, &b).unwrap();
        assert_eq!(o.shape().dims(), &[2, 3]);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn matvec_t_bitwise_matches_transpose_matvec() {
        let a = t(
            (0..15).map(|i| (i as f32 * 0.73).sin() * 2.0).collect(),
            &[3, 5],
        );
        let x = t(vec![0.5, -1.25, 2.0], &[3]);
        let fast = matvec_t(&a, &x).unwrap();
        let reference = matvec(&transpose(&a).unwrap(), &x).unwrap();
        assert_eq!(fast.as_slice(), reference.as_slice());
        assert_eq!(fast.shape().dims(), &[5]);
    }

    #[test]
    fn matvec_t_blocked_matches_naive_reference() {
        // 11 rows exercises two full quads plus a 3-row remainder.
        let a = t(
            (0..11 * 7).map(|i| ((i as f32) * 0.37).cos()).collect(),
            &[11, 7],
        );
        let x = t(
            (0..11)
                .map(|i| if i % 3 == 0 { 0.0 } else { (i as f32) - 5.0 })
                .collect(),
            &[11],
        );
        let fast = matvec_t(&a, &x).unwrap();
        let mut naive = vec![0.0f32; 7];
        for (i, &xi) in x.as_slice().iter().enumerate() {
            for (j, o) in naive.iter_mut().enumerate() {
                *o += a.as_slice()[i * 7 + j] * xi;
            }
        }
        assert_eq!(fast.as_slice(), naive.as_slice());
    }

    #[test]
    fn matvec_t_thresholded_zero_eps_equals_dense() {
        let a = t(
            (0..12 * 5).map(|i| ((i as f32) * 0.91).sin()).collect(),
            &[12, 5],
        );
        let x = t((0..12).map(|i| (i as f32 - 6.0) * 1e-4).collect(), &[12]);
        assert_eq!(
            matvec_t_thresholded(&a, &x, 0.0).unwrap().as_slice(),
            matvec_t(&a, &x).unwrap().as_slice()
        );
    }

    #[test]
    fn matvec_t_thresholded_drops_small_rows() {
        let a = t(vec![1.0, 1.0, 10.0, 10.0, 1.0, 1.0], &[3, 2]);
        let x = t(vec![1e-4, 1.0, 1e-4], &[3]);
        let y = matvec_t_thresholded(&a, &x, 1e-3).unwrap();
        assert_eq!(y.as_slice(), &[10.0, 10.0], "tiny rows skipped");
        let dense = matvec_t(&a, &x).unwrap();
        assert!(dense.as_slice()[0] != 10.0, "dense keeps tiny rows");
    }

    #[test]
    fn matvec_t_block_matches_per_row_thresholded() {
        let a = t(
            (0..9 * 6)
                .map(|i| ((i as f32) * 0.53).sin() * 1.5)
                .collect(),
            &[9, 6],
        );
        let rows = 4;
        let g: Vec<f32> = (0..rows * 9)
            .map(|i| {
                let v = ((i as f32) * 0.71).cos();
                if i % 5 == 0 {
                    v * 1e-7
                } else {
                    v
                }
            })
            .collect();
        for &eps in &[0.0f32, 1e-5] {
            let mut block = vec![0.0f32; rows * 6];
            matvec_t_block_thresholded_into(&a, &g, rows, eps, &mut block).unwrap();
            for r in 0..rows {
                let x = t(g[r * 9..(r + 1) * 9].to_vec(), &[9]);
                let per_row = matvec_t_thresholded(&a, &x, eps).unwrap();
                assert_eq!(
                    &block[r * 6..(r + 1) * 6],
                    per_row.as_slice(),
                    "row {r} eps {eps}"
                );
            }
        }
    }

    #[test]
    fn matvec_t_block_rejects_bad_shapes() {
        let a = t(vec![0.0; 6], &[2, 3]);
        let mut out = vec![0.0f32; 3];
        assert!(matvec_t_block_thresholded_into(&a, &[0.0; 3], 1, 0.0, &mut out).is_err());
        assert!(matvec_t_block_thresholded_into(&a, &[0.0; 2], 1, 0.0, &mut [0.0; 2]).is_err());
        assert!(matvec_t_block_thresholded_into(&a, &[0.0; 2], 1, 0.0, &mut out).is_ok());
    }

    #[test]
    fn matmul_thresholded_zero_eps_equals_matmul() {
        let a = t((0..6).map(|i| ((i as f32) - 2.5) * 1e-3).collect(), &[2, 3]);
        let b = t((0..6).map(|i| i as f32).collect(), &[3, 2]);
        assert_eq!(
            matmul_thresholded(&a, &b, 0.0).unwrap(),
            matmul(&a, &b).unwrap()
        );
        // A positive threshold drops the small coefficients.
        let c = matmul_thresholded(&a, &b, 1.0).unwrap();
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matvec_t_rejects_bad_shapes() {
        let a = t(vec![0.0; 6], &[2, 3]);
        assert!(matvec_t(&a, &t(vec![0.0; 3], &[3])).is_err());
        assert!(matvec_t(&t(vec![0.0; 2], &[2]), &t(vec![0.0; 2], &[2])).is_err());
    }

    #[test]
    fn outer_acc_bitwise_matches_add_outer() {
        let a = t(vec![1.5, -0.5], &[2]);
        let b = t(vec![0.25, 2.0, -3.0], &[3]);
        let mut acc = t(vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6], &[2, 3]);
        let reference = acc.add(&outer(&a, &b).unwrap()).unwrap();
        outer_acc(&mut acc, &a, &b).unwrap();
        assert_eq!(acc.as_slice(), reference.as_slice());
    }

    #[test]
    fn outer_acc_rejects_bad_shapes() {
        let a = t(vec![1.0, 2.0], &[2]);
        let b = t(vec![1.0], &[1]);
        let mut wrong = Tensor::zeros(&[2, 2]);
        assert!(outer_acc(&mut wrong, &a, &b).is_err());
        let mut mat = Tensor::zeros(&[2, 1]);
        assert!(outer_acc(&mut mat, &t(vec![0.0; 4], &[2, 2]), &b).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let x = t(vec![1.0, 0.5, -1.0], &[3]);
        let y = matvec(&a, &x).unwrap();
        let xm = x.reshape(&[3, 1]).unwrap();
        let ym = matmul(&a, &xm).unwrap();
        assert_eq!(y.as_slice(), ym.as_slice());
    }

    #[test]
    fn identity_is_neutral() {
        let a = t(vec![2.0, -1.0, 0.5, 3.0], &[2, 2]);
        let i = t(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(matmul(&a, &i).unwrap(), a);
        assert_eq!(matmul(&i, &a).unwrap(), a);
    }
}
