//! Free-function tensor operations: softmax, one-hot, losses and
//! axis reductions used by the training and attack code.

use crate::{Result, Tensor, TensorError};

/// Numerically stable softmax over the last (or only) axis of a rank-1
/// tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-vector inputs and
/// [`TensorError::InvalidArgument`] for empty ones.
///
/// # Example
///
/// ```
/// use axsnn_tensor::{ops::softmax, Tensor};
///
/// # fn main() -> axsnn_tensor::Result<()> {
/// let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3])?;
/// let p = softmax(&logits)?;
/// assert!((p.sum() - 1.0).abs() < 1e-6);
/// assert_eq!(p.argmax(), Some(2));
/// # Ok(())
/// # }
/// ```
pub fn softmax(logits: &Tensor) -> Result<Tensor> {
    if logits.shape().rank() != 1 {
        return Err(TensorError::RankMismatch {
            expected: 1,
            actual: logits.shape().rank(),
            op: "softmax",
        });
    }
    if logits.is_empty() {
        return Err(TensorError::InvalidArgument {
            message: "softmax of empty tensor".into(),
        });
    }
    let max = logits.max();
    let exps: Vec<f32> = logits.as_slice().iter().map(|&v| (v - max).exp()).collect();
    let total: f32 = exps.iter().sum();
    Tensor::from_vec(
        exps.into_iter().map(|e| e / total).collect(),
        &[logits.len()],
    )
}

/// One-hot encodes `label` into a vector of length `classes`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] when `label >= classes`.
///
/// # Example
///
/// ```
/// # fn main() -> axsnn_tensor::Result<()> {
/// let t = axsnn_tensor::ops::one_hot(2, 4)?;
/// assert_eq!(t.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
/// # Ok(())
/// # }
/// ```
pub fn one_hot(label: usize, classes: usize) -> Result<Tensor> {
    if label >= classes {
        return Err(TensorError::InvalidArgument {
            message: format!("label {label} out of range for {classes} classes"),
        });
    }
    let mut v = vec![0.0f32; classes];
    v[label] = 1.0;
    Tensor::from_vec(v, &[classes])
}

/// Cross-entropy loss of a softmax distribution against an integer label,
/// together with the gradient with respect to the *logits*
/// (`softmax(logits) − one_hot(label)`).
///
/// # Errors
///
/// Propagates errors from [`softmax`] / [`one_hot`].
///
/// # Example
///
/// ```
/// use axsnn_tensor::{ops::cross_entropy_with_grad, Tensor};
///
/// # fn main() -> axsnn_tensor::Result<()> {
/// let logits = Tensor::from_vec(vec![4.0, 0.0, 0.0], &[3])?;
/// let (loss, grad) = cross_entropy_with_grad(&logits, 0)?;
/// assert!(loss < 0.1);           // confident and correct → small loss
/// assert!(grad.as_slice()[0] < 0.0); // pushing logit 0 higher lowers loss
/// # Ok(())
/// # }
/// ```
pub fn cross_entropy_with_grad(logits: &Tensor, label: usize) -> Result<(f32, Tensor)> {
    let probs = softmax(logits)?;
    let target = one_hot(label, logits.len())?;
    let p = probs.as_slice()[label].max(1e-12);
    let loss = -p.ln();
    let grad = probs.sub(&target)?;
    Ok((loss, grad))
}

/// Mean squared error between `pred` and `target`, plus the gradient with
/// respect to `pred` (`2(pred − target)/n`).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn mse_with_grad(pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
    let diff = pred.sub(target)?;
    let n = diff.len().max(1) as f32;
    let loss = diff.as_slice().iter().map(|v| v * v).sum::<f32>() / n;
    let grad = diff.scale(2.0 / n);
    Ok((loss, grad))
}

/// Elementwise sign, mapping 0.0 to 0.0. Used by the l∞ attacks.
///
/// # Example
///
/// ```
/// let t = axsnn_tensor::Tensor::from_vec(vec![-3.0, 0.0, 0.5], &[3]).unwrap();
/// assert_eq!(axsnn_tensor::ops::sign(&t).as_slice(), &[-1.0, 0.0, 1.0]);
/// ```
pub fn sign(t: &Tensor) -> Tensor {
    t.map(|v| {
        if v > 0.0 {
            1.0
        } else if v < 0.0 {
            -1.0
        } else {
            0.0
        }
    })
}

/// Accuracy of a batch of predicted labels against ground truth, in
/// percent (0–100).
///
/// Returns 0.0 for empty inputs.
///
/// # Example
///
/// ```
/// let acc = axsnn_tensor::ops::accuracy_percent(&[1, 2, 3], &[1, 2, 0]);
/// assert!((acc - 66.666_67).abs() < 1e-3);
/// ```
pub fn accuracy_percent(pred: &[usize], truth: &[usize]) -> f32 {
    if pred.is_empty() || pred.len() != truth.len() {
        return 0.0;
    }
    let correct = pred.iter().zip(truth).filter(|(a, b)| a == b).count();
    100.0 * correct as f32 / pred.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let big = Tensor::from_vec(vec![1000.0, 1000.0, 999.0], &[3]).unwrap();
        let p = softmax(&big).unwrap();
        assert!(p.is_finite());
        assert!((p.sum() - 1.0).abs() < 1e-5);
        assert!(p.as_slice()[0] > p.as_slice()[2]);
    }

    #[test]
    fn softmax_rejects_matrix_and_empty() {
        assert!(softmax(&Tensor::zeros(&[2, 2])).is_err());
        let empty: Tensor = Vec::<f32>::new().into_iter().collect();
        assert!(softmax(&empty).is_err());
    }

    #[test]
    fn one_hot_basics() {
        assert_eq!(one_hot(0, 3).unwrap().as_slice(), &[1.0, 0.0, 0.0]);
        assert!(one_hot(3, 3).is_err());
    }

    #[test]
    fn cross_entropy_uniform_is_log_n() {
        let logits = Tensor::zeros(&[10]);
        let (loss, _) = cross_entropy_with_grad(&logits, 4).unwrap();
        assert!((loss - 10.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_sums_to_zero() {
        let logits = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.0], &[4]).unwrap();
        let (_, grad) = cross_entropy_with_grad(&logits, 2).unwrap();
        assert!(grad.sum().abs() < 1e-6);
        // Gradient at the true class is negative (prob − 1).
        assert!(grad.as_slice()[2] < 0.0);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2], &[3]).unwrap();
        let (_, grad) = cross_entropy_with_grad(&logits, 1).unwrap();
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let (fp, _) = cross_entropy_with_grad(&lp, 1).unwrap();
            let (fm, _) = cross_entropy_with_grad(&lm, 1).unwrap();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - grad.as_slice()[i]).abs() < 1e-3,
                "logit grad mismatch at {i}"
            );
        }
    }

    #[test]
    fn mse_zero_for_equal() {
        let a = Tensor::ones(&[4]);
        let (loss, grad) = mse_with_grad(&a, &a).unwrap();
        assert_eq!(loss, 0.0);
        assert_eq!(grad.sum(), 0.0);
    }

    #[test]
    fn sign_maps_zero_to_zero() {
        let t = Tensor::from_vec(vec![0.0, -0.0, 1e-9], &[3]).unwrap();
        let s = sign(&t);
        assert_eq!(s.as_slice()[0], 0.0);
        assert_eq!(s.as_slice()[1], 0.0);
        assert_eq!(s.as_slice()[2], 1.0);
    }

    #[test]
    fn accuracy_edge_cases() {
        assert_eq!(accuracy_percent(&[], &[]), 0.0);
        assert_eq!(accuracy_percent(&[1], &[1, 2]), 0.0);
        assert_eq!(accuracy_percent(&[1, 1], &[1, 1]), 100.0);
    }
}
