//! Reduced-precision weight storage planes: int8 / f16 weight buffers
//! with f32 accumulation.
//!
//! The gather-bound event kernels ([`crate::sparse::sparse_matvec_bias`],
//! the spike-plane GEMM, the event-sorted batched conv) stream weights,
//! not arithmetic: at low spike densities nearly every touched cache
//! line is a weight line. Storing the weights at reduced precision —
//! 16-bit IEEE half bits or 8-bit symmetric-quantized codes — halves to
//! quarters that traffic while every accumulate stays in f32.
//!
//! The contract that makes the planes safe to enable is **dequantization
//! exactness**: for every element, the value a plane-aware kernel loads
//! in-register is bit-identical to the f32 tensor produced by
//! round-tripping the weight through the same precision emulation
//! (`axsnn-core`'s `PrecisionScale::quantize_tensor`). Combined with the
//! unchanged accumulation order of the lane-generic kernels, a planed
//! forward is bit-identical to quantize-then-run-f32.
//!
//! * [`WeightPlane`] — the storage choice (`F32` means "no plane").
//! * [`QuantizedPlane`] — an owned quantized buffer
//!   ([`QuantizedPlane::quantize`] / [`QuantizedPlane::dequantize`]).
//! * [`PlaneView`] — the borrowed view the planed kernels take.
//! * [`f32_to_f16`] / [`f16_to_f32`] / [`f16_round_trip`] — the IEEE
//!   half conversions (round-to-nearest-even), shared with the
//!   precision emulation so both sides agree bit for bit.
//!
//! Int8 dequantization is a 255-entry `f32` table lookup
//! (`levels[code]`): branch-free, L1-resident, and exact by
//! construction — the table holds the very values the emulation
//! produces, including the snapped `±max` endpoints that make
//! quantization idempotent.

use crate::{Result, TensorError};

/// Per-layer weight storage precision.
///
/// `F32` is the identity plane (master weights stream as-is); `F16` and
/// `Int8` select quantized weight buffers for the plane-aware kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightPlane {
    /// Full-precision f32 storage — no quantized buffer.
    F32,
    /// IEEE 754 binary16 storage (`u16` bits), f32 accumulation.
    F16,
    /// Symmetric 8-bit storage (255 levels, per-tensor scale), f32
    /// accumulation.
    Int8,
}

impl WeightPlane {
    /// All planes, full precision first.
    pub const ALL: [WeightPlane; 3] = [WeightPlane::F32, WeightPlane::F16, WeightPlane::Int8];

    /// Stable lowercase name (serialization token).
    pub fn name(self) -> &'static str {
        match self {
            WeightPlane::F32 => "f32",
            WeightPlane::F16 => "f16",
            WeightPlane::Int8 => "int8",
        }
    }

    /// Parses a [`WeightPlane::name`] token.
    pub fn from_name(name: &str) -> Option<WeightPlane> {
        WeightPlane::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Bits per stored weight.
    pub fn bits_per_weight(self) -> u32 {
        match self {
            WeightPlane::F32 => 32,
            WeightPlane::F16 => 16,
            WeightPlane::Int8 => 8,
        }
    }
}

impl std::fmt::Display for WeightPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Converts an `f32` to IEEE 754 binary16 bits with round-to-nearest-even,
/// handling subnormals and overflow to infinity.
pub fn f32_to_f16(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 255 {
        // Inf / NaN: preserve the class (quiet any NaN payload).
        return if mant == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7e00
        };
    }

    // Unbiased exponent, re-biased for f16 (bias 15).
    let unbiased = exp - 127;
    let half_exp = unbiased + 15;

    if half_exp >= 31 {
        // Overflow → infinity.
        return sign | 0x7c00;
    }

    if half_exp <= 0 {
        // Subnormal (or underflow to zero) in f16.
        if half_exp < -10 {
            return sign; // Rounds to ±0.
        }
        // Implicit leading 1 becomes explicit; shift right with
        // round-to-nearest-even.
        let mant = mant | 0x0080_0000;
        let shift = (14 - half_exp) as u32;
        let halfway = 1u32 << (shift - 1);
        let rest = mant & ((1 << shift) - 1);
        let mut out = (mant >> shift) as u16;
        if rest > halfway || (rest == halfway && (out & 1) == 1) {
            out += 1; // May carry into the exponent — that is correct.
        }
        return sign | out;
    }

    // Normal range: keep 10 mantissa bits, round-to-nearest-even on the
    // 13 dropped bits.
    let halfway = 0x0000_1000u32;
    let rest = mant & 0x0000_1fff;
    let mut out = ((half_exp as u32) << 10 | (mant >> 13)) as u16;
    if rest > halfway || (rest == halfway && (out & 1) == 1) {
        out += 1; // Carry propagates into the exponent correctly.
    }
    sign | out
}

/// Converts IEEE 754 binary16 bits back to `f32` exactly (every f16
/// value is representable in f32).
pub fn f16_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let mant = (bits & 0x03ff) as u32;

    if exp == 0 {
        if mant == 0 {
            return f32::from_bits(sign);
        }
        // Subnormal: value = mant × 2⁻²⁴; exact in f32.
        let value = mant as f32 * 2.0f32.powi(-24);
        return if sign != 0 { -value } else { value };
    }
    if exp == 31 {
        return if mant == 0 {
            f32::from_bits(sign | 0x7f80_0000)
        } else {
            f32::from_bits(sign | 0x7fc0_0000 | (mant << 13))
        };
    }
    f32::from_bits(sign | ((exp + 112) << 23) | (mant << 13))
}

/// Round-trips an `f32` through IEEE binary16: the value the f16 plane
/// stores and streams for this element.
pub fn f16_round_trip(value: f32) -> f32 {
    f16_to_f32(f32_to_f16(value))
}

/// An owned reduced-precision weight buffer, materialized once per
/// tensor and streamed by the plane-aware kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantizedPlane {
    /// IEEE binary16 bits, one `u16` per weight.
    F16 {
        /// The half-precision bit patterns.
        bits: Vec<u16>,
    },
    /// Symmetric int8: biased codes (`k + 127`, so `0..=254`) plus the
    /// 255-entry dequantization table.
    Int8 {
        /// Biased level codes, one byte per weight.
        codes: Vec<u8>,
        /// `levels[c]` is the exact f32 value of code `c` — `(c − 127)
        /// · scale` with the `±127` endpoints snapped to `±max`, the
        /// same values the precision emulation produces.
        levels: Vec<f32>,
        /// The per-tensor scale `max / 127` (`0.0` for an all-zero
        /// tensor).
        scale: f32,
    },
}

impl QuantizedPlane {
    /// Quantizes `values` under `plane`. Returns `None` for
    /// [`WeightPlane::F32`] (no buffer to materialize).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when `plane` is
    /// [`WeightPlane::Int8`] and any element is non-finite — a NaN
    /// would poison the whole tensor and an infinity would collapse
    /// every weight to zero, so the symmetric quantizer refuses them
    /// with the offending index in the diagnostic.
    pub fn quantize(values: &[f32], plane: WeightPlane) -> Result<Option<QuantizedPlane>> {
        match plane {
            WeightPlane::F32 => Ok(None),
            WeightPlane::F16 => Ok(Some(QuantizedPlane::F16 {
                bits: values.iter().map(|&v| f32_to_f16(v)).collect(),
            })),
            WeightPlane::Int8 => {
                let mut max = 0.0f32;
                for (i, &v) in values.iter().enumerate() {
                    if !v.is_finite() {
                        return Err(TensorError::InvalidArgument {
                            message: format!(
                                "int8 quantization requires finite values: found {v} at element {i}"
                            ),
                        });
                    }
                    let a = v.abs();
                    if a > max {
                        max = a;
                    }
                }
                if max == 0.0 {
                    // All-zero tensor: every element is code 127 (k = 0)
                    // and every level is exactly zero.
                    return Ok(Some(QuantizedPlane::Int8 {
                        codes: vec![127u8; values.len()],
                        levels: vec![0.0f32; 255],
                        scale: 0.0,
                    }));
                }
                let scale = max / 127.0;
                // Snapping the endpoint levels to ±max keeps the L∞
                // norm an exact fixed point of quantization: the grid
                // of a requantization is identical, which is what makes
                // the quantizer exactly idempotent.
                let levels: Vec<f32> = (0..255)
                    .map(|c| {
                        let k = c - 127;
                        if k == 127 {
                            max
                        } else if k == -127 {
                            -max
                        } else {
                            k as f32 * scale
                        }
                    })
                    .collect();
                let codes = values
                    .iter()
                    .map(|&v| {
                        let k = (v / scale).round().clamp(-127.0, 127.0) as i32;
                        (k + 127) as u8
                    })
                    .collect();
                Ok(Some(QuantizedPlane::Int8 {
                    codes,
                    levels,
                    scale,
                }))
            }
        }
    }

    /// The plane this buffer stores.
    pub fn plane(&self) -> WeightPlane {
        match self {
            QuantizedPlane::F16 { .. } => WeightPlane::F16,
            QuantizedPlane::Int8 { .. } => WeightPlane::Int8,
        }
    }

    /// Number of stored weights.
    pub fn len(&self) -> usize {
        match self {
            QuantizedPlane::F16 { bits } => bits.len(),
            QuantizedPlane::Int8 { codes, .. } => codes.len(),
        }
    }

    /// Returns `true` when the buffer holds no weights.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The per-tensor int8 scale (`None` for an f16 plane).
    pub fn int8_scale(&self) -> Option<f32> {
        match self {
            QuantizedPlane::F16 { .. } => None,
            QuantizedPlane::Int8 { scale, .. } => Some(*scale),
        }
    }

    /// Materializes the exact f32 values the plane streams — element
    /// for element the same bits a plane-aware kernel loads, and the
    /// same bits the precision emulation's quantize-round-trip
    /// produces.
    pub fn dequantize(&self) -> Vec<f32> {
        match self {
            QuantizedPlane::F16 { bits } => bits.iter().map(|&b| f16_to_f32(b)).collect(),
            QuantizedPlane::Int8 { codes, levels, .. } => {
                codes.iter().map(|&c| levels[c as usize]).collect()
            }
        }
    }

    /// The borrowed view the planed kernels take.
    pub fn view(&self) -> PlaneView<'_> {
        match self {
            QuantizedPlane::F16 { bits } => PlaneView::F16(bits),
            QuantizedPlane::Int8 { codes, levels, .. } => PlaneView::Int8 { codes, levels },
        }
    }
}

/// A borrowed reduced-precision weight buffer — the argument type of the
/// plane-aware kernels ([`crate::sparse::sparse_matvec_bias_planed`] and
/// friends). Dispatched once at kernel entry; the inner loops are
/// monomorphized per storage format.
#[derive(Debug, Clone, Copy)]
pub enum PlaneView<'a> {
    /// IEEE binary16 bits.
    F16(&'a [u16]),
    /// Symmetric int8 codes plus the 255-entry dequantization table.
    Int8 {
        /// Biased level codes (`k + 127`).
        codes: &'a [u8],
        /// The 255-entry code → f32 table.
        levels: &'a [f32],
    },
}

impl PlaneView<'_> {
    /// Number of stored weights.
    pub fn len(&self) -> usize {
        match self {
            PlaneView::F16(bits) => bits.len(),
            PlaneView::Int8 { codes, .. } => codes.len(),
        }
    }

    /// Returns `true` when the view holds no weights.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One weight row's storage format, abstracted for the lane-generic
/// gather kernels: `load(i)` yields the exact f32 value of element `i`.
/// The `f32` lane is a transparent slice load, so the monomorphized f32
/// kernels compile to the same code as before the abstraction.
pub(crate) trait WeightLane: Copy {
    /// The f32 value of element `i`.
    fn load(&self, i: usize) -> f32;
    /// The sub-lane covering `lo..hi`.
    fn slice(&self, lo: usize, hi: usize) -> Self;
    /// Blocked dequantization: decodes elements `0..dst.len()` into
    /// `dst`, element `i` bit-identical to `self.load(i)`. The batched
    /// kernels use this to materialize a weight panel once per tile per
    /// batch instead of re-decoding per `(event, output)` pair; the
    /// reduced-precision lanes route through the SIMD decoders when
    /// [`crate::simd::active`].
    fn decode_into(&self, dst: &mut [f32]);
    /// Fused panel pack for an 8-row tile (`self.len() == 8·k`): writes
    /// `panel[j·8 + l]` = element `l·k + j`, each bit-identical to
    /// `self.load(l·k + j)`. One pass from the stored encoding straight
    /// to the index-major panel — decoding to an f32 block and then
    /// transposing would cost an extra write+read round trip over the
    /// tile per batch. The f32 impl requires [`crate::simd::active`]
    /// (only the SIMD GEMM branch packs panels); the reduced-precision
    /// impls degrade to scalar loops on hardware without the needed
    /// ISA.
    fn pack_panel8(&self, k: usize, panel: &mut [f32]);
}

/// Full-precision lane: a plain `&[f32]`.
#[derive(Clone, Copy)]
pub(crate) struct F32Lane<'a>(pub(crate) &'a [f32]);

impl WeightLane for F32Lane<'_> {
    #[inline(always)]
    fn load(&self, i: usize) -> f32 {
        self.0[i]
    }

    #[inline(always)]
    fn slice(&self, lo: usize, hi: usize) -> Self {
        F32Lane(&self.0[lo..hi])
    }

    #[inline]
    fn decode_into(&self, dst: &mut [f32]) {
        dst.copy_from_slice(&self.0[..dst.len()]);
    }

    #[inline]
    fn pack_panel8(&self, k: usize, panel: &mut [f32]) {
        crate::simd::pack_rows8(self.0, k, panel);
    }
}

/// Half-precision lane: converts each 16-bit pattern in-register.
#[derive(Clone, Copy)]
pub(crate) struct F16Lane<'a>(pub(crate) &'a [u16]);

impl WeightLane for F16Lane<'_> {
    #[inline(always)]
    fn load(&self, i: usize) -> f32 {
        f16_to_f32(self.0[i])
    }

    #[inline(always)]
    fn slice(&self, lo: usize, hi: usize) -> Self {
        F16Lane(&self.0[lo..hi])
    }

    #[inline]
    fn decode_into(&self, dst: &mut [f32]) {
        crate::simd::decode_f16(&self.0[..dst.len()], dst);
    }

    #[inline]
    fn pack_panel8(&self, k: usize, panel: &mut [f32]) {
        crate::simd::pack_panel8_f16(self.0, k, panel);
    }
}

/// Int8 lane: a byte load plus one L1-resident table lookup.
#[derive(Clone, Copy)]
pub(crate) struct Int8Lane<'a> {
    pub(crate) codes: &'a [u8],
    pub(crate) levels: &'a [f32],
}

impl WeightLane for Int8Lane<'_> {
    #[inline(always)]
    fn load(&self, i: usize) -> f32 {
        self.levels[self.codes[i] as usize]
    }

    #[inline(always)]
    fn slice(&self, lo: usize, hi: usize) -> Self {
        Int8Lane {
            codes: &self.codes[lo..hi],
            levels: self.levels,
        }
    }

    #[inline]
    fn decode_into(&self, dst: &mut [f32]) {
        crate::simd::decode_int8(&self.codes[..dst.len()], self.levels, dst);
    }

    #[inline]
    fn pack_panel8(&self, k: usize, panel: &mut [f32]) {
        crate::simd::pack_panel8_int8(self.codes, self.levels, k, panel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_names_roundtrip() {
        for plane in WeightPlane::ALL {
            assert_eq!(WeightPlane::from_name(plane.name()), Some(plane));
            assert_eq!(plane.to_string(), plane.name());
        }
        assert_eq!(WeightPlane::from_name("fp64"), None);
        assert!(WeightPlane::F32.bits_per_weight() > WeightPlane::Int8.bits_per_weight());
    }

    #[test]
    fn f32_plane_has_no_buffer() {
        assert_eq!(
            QuantizedPlane::quantize(&[1.0, 2.0], WeightPlane::F32).unwrap(),
            None
        );
    }

    #[test]
    fn f16_plane_dequantizes_to_round_trip() {
        let values = [0.1f32, -1.0, 3.1472, 0.0, -0.0, 65519.0, 1e-8];
        let plane = QuantizedPlane::quantize(&values, WeightPlane::F16)
            .unwrap()
            .unwrap();
        assert_eq!(plane.plane(), WeightPlane::F16);
        assert_eq!(plane.len(), values.len());
        assert_eq!(plane.int8_scale(), None);
        let dq = plane.dequantize();
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(dq[i].to_bits(), f16_round_trip(v).to_bits(), "element {i}");
        }
        // The lane loads the same bits the dequantized tensor holds.
        if let PlaneView::F16(bits) = plane.view() {
            for (i, dv) in dq.iter().enumerate() {
                assert_eq!(F16Lane(bits).load(i).to_bits(), dv.to_bits());
            }
        } else {
            panic!("expected an f16 view");
        }
    }

    #[test]
    fn int8_plane_snaps_endpoints_and_is_idempotent() {
        let values: Vec<f32> = (0..64).map(|i| ((i as f32 * 0.37).sin()) * 2.5).collect();
        let plane = QuantizedPlane::quantize(&values, WeightPlane::Int8)
            .unwrap()
            .unwrap();
        let dq = plane.dequantize();
        let max = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        // The max-magnitude element survives exactly.
        assert!(dq.iter().any(|&v| v.abs() == max));
        assert!(dq.iter().all(|&v| v.abs() <= max));
        // Requantizing the dequantized values is the identity, bit for
        // bit — the snapped endpoints keep the L∞ norm (and with it
        // the whole grid) an exact fixed point.
        let again = QuantizedPlane::quantize(&dq, WeightPlane::Int8)
            .unwrap()
            .unwrap();
        let dq2 = again.dequantize();
        for (a, b) in dq.iter().zip(&dq2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(plane.int8_scale(), Some(max / 127.0));
    }

    #[test]
    fn int8_lane_loads_match_dequantized_values() {
        let values: Vec<f32> = (0..33).map(|i| (i as f32 - 16.0) * 0.3).collect();
        let plane = QuantizedPlane::quantize(&values, WeightPlane::Int8)
            .unwrap()
            .unwrap();
        let dq = plane.dequantize();
        if let PlaneView::Int8 { codes, levels } = plane.view() {
            let lane = Int8Lane { codes, levels };
            for (i, dv) in dq.iter().enumerate() {
                assert_eq!(lane.load(i).to_bits(), dv.to_bits());
            }
            assert_eq!(lane.slice(4, 8).load(0).to_bits(), dq[4].to_bits());
        } else {
            panic!("expected an int8 view");
        }
    }

    #[test]
    fn int8_rejects_non_finite() {
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let err = QuantizedPlane::quantize(&[0.5, bad, 1.0], WeightPlane::Int8).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("element 1"),
                "diagnostic names the index: {msg}"
            );
        }
        // f16 keeps IEEE semantics for non-finite values instead.
        assert!(QuantizedPlane::quantize(&[f32::NAN], WeightPlane::F16).is_ok());
    }

    #[test]
    fn int8_all_zero_tensor() {
        let plane = QuantizedPlane::quantize(&[0.0, -0.0, 0.0], WeightPlane::Int8)
            .unwrap()
            .unwrap();
        assert_eq!(plane.int8_scale(), Some(0.0));
        assert!(plane.dequantize().iter().all(|&v| v == 0.0));
        assert!(!plane.is_empty());
    }
}
