use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Row-major shape descriptor for a [`crate::Tensor`].
///
/// A `Shape` owns its dimension list and provides volume and stride
/// computation plus flat-index conversion.
///
/// # Example
///
/// ```
/// use axsnn_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension slice.
    ///
    /// # Example
    ///
    /// ```
    /// let s = axsnn_tensor::Shape::new(&[28, 28]);
    /// assert_eq!(s.rank(), 2);
    /// ```
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Returns the dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Returns the number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Returns the total number of elements (product of dimensions).
    ///
    /// The volume of a rank-0 shape is 1.
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns the size of dimension `axis`, or `None` if out of range.
    pub fn dim(&self, axis: usize) -> Option<usize> {
        self.dims.get(axis).copied()
    }

    /// Computes row-major strides for this shape.
    ///
    /// # Example
    ///
    /// ```
    /// let s = axsnn_tensor::Shape::new(&[4, 5]);
    /// assert_eq!(s.strides(), vec![5, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index rank differs
    /// from the shape rank or any coordinate exceeds its dimension.
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> axsnn_tensor::Result<()> {
    /// let s = axsnn_tensor::Shape::new(&[2, 3]);
    /// assert_eq!(s.flat_index(&[1, 2])?, 5);
    /// # Ok(())
    /// # }
    /// ```
    pub fn flat_index(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        let mut flat = 0usize;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(&self.dims).enumerate() {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.dims.clone(),
                });
            }
            flat += i * strides[axis];
        }
        Ok(flat)
    }

    /// Returns `true` when both shapes have identical dimension lists.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_of_empty_shape_is_one() {
        assert_eq!(Shape::new(&[]).volume(), 1);
    }

    #[test]
    fn volume_with_zero_dim_is_zero() {
        assert_eq!(Shape::new(&[3, 0, 2]).volume(), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[7]).strides(), vec![1]);
    }

    #[test]
    fn flat_index_roundtrip() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let f = s.flat_index(&[i, j, k]).unwrap();
                    assert!(f < 24);
                    assert!(seen.insert(f), "flat index collision");
                }
            }
        }
    }

    #[test]
    fn flat_index_rejects_bad_rank() {
        let s = Shape::new(&[2, 3]);
        assert!(s.flat_index(&[1]).is_err());
        assert!(s.flat_index(&[1, 1, 1]).is_err());
    }

    #[test]
    fn flat_index_rejects_out_of_bounds() {
        let s = Shape::new(&[2, 3]);
        assert!(s.flat_index(&[2, 0]).is_err());
        assert!(s.flat_index(&[0, 3]).is_err());
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "(2, 3)");
        assert_eq!(Shape::new(&[]).to_string(), "()");
    }
}
