//! Runtime-dispatched x86-64 SIMD backends for the gather-bound kernels.
//!
//! Every sparse kernel in this crate has a **portable scalar
//! implementation that is the single source of truth for semantics**
//! ([`crate::sparse::gather_row`]'s 4-accumulator order and its batched
//! relatives). This module adds AVX2 backends that execute the *same
//! arithmetic* with 8 outputs per instruction: **lanes map to distinct
//! output rows**, so each output's accumulation order — four partial
//! sums over ascending index chunks combined as `(a0 + a1) + (a2 + a3)`
//! followed by the scalar remainder tail — is unchanged, and SIMD
//! results are **bit-identical** to the scalar kernels (pinned by the
//! `simd_equivalence` suite in `tests/`).
//!
//! Dispatch is decided once per process with
//! [`is_x86_feature_detected!`]: AVX2 + FMA select the vector backends,
//! anything else (including non-x86 targets) keeps the scalar kernels.
//! Setting the environment variable **`AXSNN_NO_SIMD`** (to any value)
//! forces the scalar path — the escape hatch CI uses to keep the
//! fallback exercised, and the first knob to reach for when triaging a
//! suspected kernel miscompile.
//!
//! Three primitive shapes cover the hot paths:
//!
//! * [`matvec_rows8`] — gathers one index list against 8 weight rows at
//!   once (`vgatherdps` over a row-strided offset vector): the sparse
//!   matvec tile, also used by the spike-plane GEMM on matvec-shaped
//!   batches.
//! * [`pack_rows8`] / [`matmul_panel8`] — the GEMM fast path: an 8-row
//!   weight tile is transposed once per batch into an index-major panel
//!   (`panel[j·8 + l] = row_l[j]`), turning every per-event gather into
//!   one contiguous 32-byte load shared by 8 output rows.
//! * [`decode_f16`] / [`decode_int8`] — blocked dequantization for the
//!   reduced-precision weight planes: a panel of f16 bits (F16C
//!   `vcvtph2ps`) or int8 codes (LUT `vgatherdps`) is decoded to f32
//!   once per tile per batch instead of per `(event, output)` pair.
//!
//! # Provenance
//!
//! Introduced in PR 10 (the ROADMAP's "explicit SIMD" single-core
//! headroom item); bit-identity is pinned by `simd_equivalence` and the
//! floors live in `BENCH_simd.json`.

// The crate denies `unsafe_code`; the `std::arch` backends below are
// the one sanctioned exception. Every `unsafe fn` documents the
// contract its safe wrapper enforces, and no unsafe leaves this module.
#![allow(unsafe_code)]

use std::sync::OnceLock;

/// One-time feature probe: (simd usable, f16c usable, detected list).
struct Detection {
    simd: bool,
    f16c: bool,
    features: String,
}

fn detection() -> &'static Detection {
    static DETECTION: OnceLock<Detection> = OnceLock::new();
    DETECTION.get_or_init(|| {
        let disabled = std::env::var_os("AXSNN_NO_SIMD").is_some();
        #[cfg(target_arch = "x86_64")]
        {
            let probes = [
                ("avx2", std::arch::is_x86_feature_detected!("avx2")),
                ("fma", std::arch::is_x86_feature_detected!("fma")),
                ("f16c", std::arch::is_x86_feature_detected!("f16c")),
                ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
            ];
            let features = probes
                .iter()
                .filter(|(_, on)| *on)
                .map(|(name, _)| *name)
                .collect::<Vec<_>>()
                .join(",");
            let avx2 = probes[0].1 && probes[1].1;
            Detection {
                simd: avx2 && !disabled,
                f16c: avx2 && probes[2].1 && !disabled,
                features,
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = disabled;
            Detection {
                simd: false,
                f16c: false,
                features: String::new(),
            }
        }
    })
}

/// Returns `true` when the AVX2 backends are selected: x86-64 with AVX2
/// and FMA detected at runtime, and `AXSNN_NO_SIMD` not set. Decided
/// once per process.
pub fn active() -> bool {
    detection().simd
}

/// The dispatch choice the kernels run under: `"avx2"` when [`active`],
/// `"scalar"` otherwise. Recorded in every bench artifact so perf
/// floors stay hardware-aware.
pub fn isa_label() -> &'static str {
    if active() {
        "avx2"
    } else {
        "scalar"
    }
}

/// Comma-separated ISA features detected on this machine (for example
/// `"avx2,fma,f16c"`), independent of the `AXSNN_NO_SIMD` override;
/// empty on hardware without any probed feature and on non-x86 targets.
pub fn detected_features() -> &'static str {
    &detection().features
}

/// Returns `true` when every index addresses a column below `k` — the
/// bounds contract the unsafe gather kernels rely on. The event types
/// ([`crate::sparse::SpikeVector`], [`crate::batched::SpikeMatrix`])
/// validate this at construction; the dispatchers re-check in O(nnz) so
/// the vector backends stay sound even against a hand-rolled index
/// list.
pub(crate) fn indices_in_bounds(indices: &[u32], k: usize) -> bool {
    indices.iter().all(|&j| (j as usize) < k)
}

/// Number of output rows one vector tile covers.
pub(crate) const ROW_LANES: usize = 8;

/// Gathers `indices` against 8 consecutive weight rows at once:
/// `out[l] = init[l] + Σ_j rows[l·k + indices[j]]` with exactly the
/// scalar [`crate::sparse::gather_row`] accumulation order per lane.
///
/// # Panics
///
/// Panics when `rows` is not `8·k` long, `out` is shorter than 8, or an
/// index is out of bounds for `k` — or when called without [`active`]
/// (the dispatchers guarantee it).
#[inline]
pub(crate) fn matvec_rows8(
    rows: &[f32],
    k: usize,
    indices: &[u32],
    init: &[f32; 8],
    out: &mut [f32],
) {
    assert!(rows.len() == ROW_LANES * k && out.len() >= ROW_LANES && active());
    assert!(indices_in_bounds(indices, k), "spike index out of bounds");
    #[cfg(target_arch = "x86_64")]
    // SAFETY: AVX2 is detected (`active()` asserted above); every
    // gather reads `rows[l·k + j]` with `l < 8` and `j < k`, in bounds
    // of the asserted `8·k` slice; the store writes `out[0..8]`.
    unsafe {
        matvec_rows8_avx2(rows.as_ptr(), k, indices, init, out.as_mut_ptr());
    }
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("SIMD dispatch is never active off x86-64");
}

/// Two [`matvec_rows8`] tiles sharing one walk of the index list:
/// `out[l] = init[l] + Σ_j rows[l·k + indices[j]]` for 16 rows. Each
/// 8-lane half keeps the exact scalar accumulation order; fusing the
/// tiles doubles the independent gather chains in flight, which is what
/// the L2-latency-bound matvec shape needs (the 8-row kernel leaves the
/// out-of-order core starved for outstanding loads).
///
/// # Panics
///
/// As [`matvec_rows8`] with `16·k` rows and 16 outputs.
#[inline]
pub(crate) fn matvec_rows16(
    rows: &[f32],
    k: usize,
    indices: &[u32],
    init: &[f32; 16],
    out: &mut [f32],
) {
    assert!(rows.len() == 2 * ROW_LANES * k && out.len() >= 2 * ROW_LANES && active());
    assert!(indices_in_bounds(indices, k), "spike index out of bounds");
    #[cfg(target_arch = "x86_64")]
    // SAFETY: AVX2 is detected (`active()` asserted above); every
    // gather reads `rows[l·k + j]` with `l < 16` and `j < k`, in bounds
    // of the asserted `16·k` slice; the stores write `out[0..16]`.
    unsafe {
        matvec_rows16_avx2(rows.as_ptr(), k, indices, init, out.as_mut_ptr());
    }
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("SIMD dispatch is never active off x86-64");
}

/// Transposes an 8-row weight tile into an index-major panel:
/// `panel[j·8 + l] = rows[l·k + j]` — one contiguous 8-float line per
/// weight column, built once per batch so the GEMM inner loop replaces
/// gathers with plain vector loads.
///
/// # Panics
///
/// As [`matvec_rows8`] (`panel` takes the place of `out`, `8·k` long).
#[inline]
pub(crate) fn pack_rows8(rows: &[f32], k: usize, panel: &mut [f32]) {
    assert!(rows.len() == ROW_LANES * k && panel.len() == ROW_LANES * k && active());
    #[cfg(target_arch = "x86_64")]
    // SAFETY: AVX2 detected; gathers read `rows[l·k + j]` for `j < k`,
    // stores write `panel[j·8 .. j·8 + 8]` — both within the asserted
    // `8·k` slices.
    unsafe {
        pack_rows8_avx2(rows.as_ptr(), k, panel.as_mut_ptr());
    }
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("SIMD dispatch is never active off x86-64");
}

/// The GEMM microkernel over a packed panel: like [`matvec_rows8`] but
/// each gathered column is one contiguous load `panel[j·8 .. j·8 + 8]`.
/// Per lane the accumulation order is again exactly
/// [`crate::sparse::gather_row`]'s.
///
/// # Panics
///
/// As [`matvec_rows8`] (`panel` must be `8·k` long).
#[inline]
pub(crate) fn matmul_panel8(
    panel: &[f32],
    k: usize,
    indices: &[u32],
    init: &[f32; 8],
    out: &mut [f32],
) {
    assert!(panel.len() == ROW_LANES * k && out.len() >= ROW_LANES && active());
    assert!(indices_in_bounds(indices, k), "spike index out of bounds");
    #[cfg(target_arch = "x86_64")]
    // SAFETY: AVX2 detected; every load reads `panel[j·8 .. j·8 + 8]`
    // with `j < k`, in bounds of the asserted `8·k` panel; the store
    // writes `out[0..8]`.
    unsafe {
        matmul_panel8_avx2(panel.as_ptr(), indices, init, out.as_mut_ptr());
    }
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("SIMD dispatch is never active off x86-64");
}

/// Decodes a panel of IEEE binary16 bits to f32, bit-identical to
/// [`crate::plane::f16_to_f32`] per element: F16C `vcvtph2ps` eight at
/// a time when available, the scalar conversion otherwise.
///
/// # Panics
///
/// Panics when `bits` and `dst` differ in length.
pub(crate) fn decode_f16(bits: &[u16], dst: &mut [f32]) {
    assert_eq!(bits.len(), dst.len());
    #[cfg(target_arch = "x86_64")]
    if detection().f16c {
        // SAFETY: F16C is detected; both pointers cover `len` elements
        // of the asserted equal-length slices and the vector head stops
        // 8 short of the end.
        unsafe {
            decode_f16_f16c(bits.as_ptr(), dst.as_mut_ptr(), bits.len());
        }
        return;
    }
    for (d, &b) in dst.iter_mut().zip(bits) {
        *d = crate::plane::f16_to_f32(b);
    }
}

/// Decodes a panel of int8 codes through the 255-entry `levels` table,
/// bit-identical to the scalar `levels[code]` walk per element: AVX2
/// widens 8 codes and gathers their levels per iteration when
/// available.
///
/// # Panics
///
/// Panics when `codes` and `dst` differ in length or `levels` does not
/// hold exactly 255 entries.
pub(crate) fn decode_int8(codes: &[u8], levels: &[f32], dst: &mut [f32]) {
    assert_eq!(codes.len(), dst.len());
    assert_eq!(levels.len(), 255);
    #[cfg(target_arch = "x86_64")]
    if detection().simd {
        // SAFETY: AVX2 is detected; code loads stay within `codes`, the
        // level gather is clamped to index ≤ 254 < 255, and stores
        // cover `dst[0..len]` of the asserted equal-length slices.
        unsafe {
            decode_int8_avx2(
                codes.as_ptr(),
                levels.as_ptr(),
                dst.as_mut_ptr(),
                codes.len(),
            );
        }
        return;
    }
    for (d, &c) in dst.iter_mut().zip(codes) {
        *d = levels[c as usize];
    }
}

/// Fused decode-and-pack for an 8-row f16 tile: writes
/// `panel[j·8 + l] = f16→f32(bits[l·k + j])` — each element
/// bit-identical to [`crate::plane::f16_to_f32`] — without an f32 block
/// intermediate (F16C converts 8 columns per row, an in-register 8×8
/// transpose orders them index-major). Scalar loop without F16C.
///
/// # Panics
///
/// Panics when `bits` or `panel` is not `8·k` long.
pub(crate) fn pack_panel8_f16(bits: &[u16], k: usize, panel: &mut [f32]) {
    assert!(bits.len() == ROW_LANES * k && panel.len() == ROW_LANES * k);
    #[cfg(target_arch = "x86_64")]
    if detection().f16c {
        // SAFETY: F16C is detected; loads read `bits[l·k + j]` windows
        // and stores write `panel[j·8 ..]`, both within the asserted
        // `8·k` slices.
        unsafe {
            avx2::pack_panel8_f16_f16c(bits.as_ptr(), k, panel.as_mut_ptr());
        }
        return;
    }
    for j in 0..k {
        for l in 0..ROW_LANES {
            panel[j * ROW_LANES + l] = crate::plane::f16_to_f32(bits[l * k + j]);
        }
    }
}

/// Fused decode-and-pack for an 8-row int8 tile through the 255-entry
/// `levels` table: `panel[j·8 + l] = levels[codes[l·k + j]]`,
/// bit-identical to the scalar LUT walk per element (the AVX2 path
/// clamps corrupt codes to 254 like [`decode_int8`]).
///
/// # Panics
///
/// Panics when `codes` or `panel` is not `8·k` long or `levels` does
/// not hold exactly 255 entries.
pub(crate) fn pack_panel8_int8(codes: &[u8], levels: &[f32], k: usize, panel: &mut [f32]) {
    assert!(codes.len() == ROW_LANES * k && panel.len() == ROW_LANES * k);
    assert_eq!(levels.len(), 255);
    #[cfg(target_arch = "x86_64")]
    if detection().simd {
        // An arithmetic decode of the quantizer's affine table
        // (subtract, convert, multiply, endpoint blends) was measured
        // *slower* here: its shuffle-port µops contend with the 8×8
        // transpose, while the LUT gather hits a 1 KB L1-resident table
        // and pipelines cleanly. The gather is the keeper.
        //
        // SAFETY: AVX2 is detected; code loads stay within the asserted
        // `8·k` slice, level gathers are clamped to index ≤ 254 < 255,
        // and stores cover `panel[0..8·k]`.
        unsafe {
            avx2::pack_panel8_int8_avx2(codes.as_ptr(), levels.as_ptr(), k, panel.as_mut_ptr());
        }
        return;
    }
    for j in 0..k {
        for l in 0..ROW_LANES {
            panel[j * ROW_LANES + l] = levels[codes[l * k + j] as usize];
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// The per-lane row offsets `{0, k, 2k, …, 7k}` of an 8-row tile.
    ///
    /// # Safety
    ///
    /// Requires AVX (caller holds the AVX2 target feature).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn row_offsets(k: usize) -> __m256i {
        debug_assert!(7usize
            .checked_mul(k)
            .is_some_and(|v| v <= i32::MAX as usize));
        let k = k as i32;
        _mm256_setr_epi32(0, k, 2 * k, 3 * k, 4 * k, 5 * k, 6 * k, 7 * k)
    }

    /// # Safety
    ///
    /// AVX2 required; `rows` must cover `8·k` floats, every index must
    /// be `< k`, and `out` must cover 8 floats.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn matvec_rows8_avx2(
        rows: *const f32,
        k: usize,
        indices: &[u32],
        init: &[f32; 8],
        out: *mut f32,
    ) {
        let off = row_offsets(k);
        let mut a0 = _mm256_loadu_ps(init.as_ptr());
        let mut a1 = _mm256_setzero_ps();
        let mut a2 = _mm256_setzero_ps();
        let mut a3 = _mm256_setzero_ps();
        let mut chunks = indices.chunks_exact(4);
        for c in &mut chunks {
            a0 = _mm256_add_ps(a0, _mm256_i32gather_ps::<4>(rows.add(c[0] as usize), off));
            a1 = _mm256_add_ps(a1, _mm256_i32gather_ps::<4>(rows.add(c[1] as usize), off));
            a2 = _mm256_add_ps(a2, _mm256_i32gather_ps::<4>(rows.add(c[2] as usize), off));
            a3 = _mm256_add_ps(a3, _mm256_i32gather_ps::<4>(rows.add(c[3] as usize), off));
        }
        // Combine in the scalar kernel's fixed (a0 + a1) + (a2 + a3)
        // order, then the remainder tail — per lane this is exactly
        // `gather_row` on that lane's weight row.
        let mut tail = _mm256_add_ps(_mm256_add_ps(a0, a1), _mm256_add_ps(a2, a3));
        for &j in chunks.remainder() {
            tail = _mm256_add_ps(tail, _mm256_i32gather_ps::<4>(rows.add(j as usize), off));
        }
        _mm256_storeu_ps(out, tail);
    }

    /// # Safety
    ///
    /// AVX2 required; `rows` must cover `16·k` floats, every index must
    /// be `< k`, and `out` must cover 16 floats.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn matvec_rows16_avx2(
        rows: *const f32,
        k: usize,
        indices: &[u32],
        init: &[f32; 16],
        out: *mut f32,
    ) {
        let off = row_offsets(k);
        let lo = rows;
        let hi = rows.add(8 * k);
        let mut a0 = _mm256_loadu_ps(init.as_ptr());
        let mut a1 = _mm256_setzero_ps();
        let mut a2 = _mm256_setzero_ps();
        let mut a3 = _mm256_setzero_ps();
        let mut b0 = _mm256_loadu_ps(init.as_ptr().add(8));
        let mut b1 = _mm256_setzero_ps();
        let mut b2 = _mm256_setzero_ps();
        let mut b3 = _mm256_setzero_ps();
        let mut chunks = indices.chunks_exact(4);
        for c in &mut chunks {
            let (j0, j1, j2, j3) = (c[0] as usize, c[1] as usize, c[2] as usize, c[3] as usize);
            a0 = _mm256_add_ps(a0, _mm256_i32gather_ps::<4>(lo.add(j0), off));
            b0 = _mm256_add_ps(b0, _mm256_i32gather_ps::<4>(hi.add(j0), off));
            a1 = _mm256_add_ps(a1, _mm256_i32gather_ps::<4>(lo.add(j1), off));
            b1 = _mm256_add_ps(b1, _mm256_i32gather_ps::<4>(hi.add(j1), off));
            a2 = _mm256_add_ps(a2, _mm256_i32gather_ps::<4>(lo.add(j2), off));
            b2 = _mm256_add_ps(b2, _mm256_i32gather_ps::<4>(hi.add(j2), off));
            a3 = _mm256_add_ps(a3, _mm256_i32gather_ps::<4>(lo.add(j3), off));
            b3 = _mm256_add_ps(b3, _mm256_i32gather_ps::<4>(hi.add(j3), off));
        }
        let mut ta = _mm256_add_ps(_mm256_add_ps(a0, a1), _mm256_add_ps(a2, a3));
        let mut tb = _mm256_add_ps(_mm256_add_ps(b0, b1), _mm256_add_ps(b2, b3));
        for &j in chunks.remainder() {
            ta = _mm256_add_ps(ta, _mm256_i32gather_ps::<4>(lo.add(j as usize), off));
            tb = _mm256_add_ps(tb, _mm256_i32gather_ps::<4>(hi.add(j as usize), off));
        }
        _mm256_storeu_ps(out, ta);
        _mm256_storeu_ps(out.add(8), tb);
    }

    /// In-register 8×8 f32 transpose: output vector `c` holds element
    /// `c` of each input vector. The standard unpack/shuffle/permute
    /// ladder — 24 shuffle µops replace 8 gathers when a tile is
    /// transposed from contiguous row loads.
    ///
    /// # Safety
    ///
    /// Requires AVX (caller holds the AVX2 target feature).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn transpose8x8(r: [__m256; 8]) -> [__m256; 8] {
        let t0 = _mm256_unpacklo_ps(r[0], r[1]);
        let t1 = _mm256_unpackhi_ps(r[0], r[1]);
        let t2 = _mm256_unpacklo_ps(r[2], r[3]);
        let t3 = _mm256_unpackhi_ps(r[2], r[3]);
        let t4 = _mm256_unpacklo_ps(r[4], r[5]);
        let t5 = _mm256_unpackhi_ps(r[4], r[5]);
        let t6 = _mm256_unpacklo_ps(r[6], r[7]);
        let t7 = _mm256_unpackhi_ps(r[6], r[7]);
        let s0 = _mm256_shuffle_ps::<0x44>(t0, t2);
        let s1 = _mm256_shuffle_ps::<0xEE>(t0, t2);
        let s2 = _mm256_shuffle_ps::<0x44>(t1, t3);
        let s3 = _mm256_shuffle_ps::<0xEE>(t1, t3);
        let s4 = _mm256_shuffle_ps::<0x44>(t4, t6);
        let s5 = _mm256_shuffle_ps::<0xEE>(t4, t6);
        let s6 = _mm256_shuffle_ps::<0x44>(t5, t7);
        let s7 = _mm256_shuffle_ps::<0xEE>(t5, t7);
        [
            _mm256_permute2f128_ps::<0x20>(s0, s4),
            _mm256_permute2f128_ps::<0x20>(s1, s5),
            _mm256_permute2f128_ps::<0x20>(s2, s6),
            _mm256_permute2f128_ps::<0x20>(s3, s7),
            _mm256_permute2f128_ps::<0x31>(s0, s4),
            _mm256_permute2f128_ps::<0x31>(s1, s5),
            _mm256_permute2f128_ps::<0x31>(s2, s6),
            _mm256_permute2f128_ps::<0x31>(s3, s7),
        ]
    }

    /// # Safety
    ///
    /// AVX2 required; `rows` and `panel` must both cover `8·k` floats.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn pack_rows8_avx2(rows: *const f32, k: usize, panel: *mut f32) {
        let mut j = 0usize;
        // 8-column blocks: contiguous loads per row + one in-register
        // transpose beat a gather per column.
        while j + 8 <= k {
            let mut v = [_mm256_setzero_ps(); 8];
            for (l, slot) in v.iter_mut().enumerate() {
                *slot = _mm256_loadu_ps(rows.add(l * k + j));
            }
            let t = transpose8x8(v);
            for (c, col) in t.iter().enumerate() {
                _mm256_storeu_ps(panel.add((j + c) * 8), *col);
            }
            j += 8;
        }
        let off = row_offsets(k);
        while j < k {
            _mm256_storeu_ps(panel.add(j * 8), _mm256_i32gather_ps::<4>(rows.add(j), off));
            j += 1;
        }
    }

    /// Fused f16 decode-and-pack: `panel[j·8 + l] = f16→f32(bits[l·k + j])`
    /// with no f32 block intermediate.
    ///
    /// # Safety
    ///
    /// AVX2+F16C required; `bits` and `panel` must cover `8·k` elements.
    #[target_feature(enable = "avx2,f16c")]
    pub(super) unsafe fn pack_panel8_f16_f16c(bits: *const u16, k: usize, panel: *mut f32) {
        let mut j = 0usize;
        while j + 8 <= k {
            let mut v = [_mm256_setzero_ps(); 8];
            for (l, slot) in v.iter_mut().enumerate() {
                *slot = _mm256_cvtph_ps(_mm_loadu_si128(bits.add(l * k + j).cast()));
            }
            let t = transpose8x8(v);
            for (c, col) in t.iter().enumerate() {
                _mm256_storeu_ps(panel.add((j + c) * 8), *col);
            }
            j += 8;
        }
        while j < k {
            for l in 0..8 {
                *panel.add(j * 8 + l) = crate::plane::f16_to_f32(*bits.add(l * k + j));
            }
            j += 1;
        }
    }

    /// Fused int8 decode-and-pack through the 255-entry `levels` table:
    /// `panel[j·8 + l] = levels[codes[l·k + j]]`, codes clamped to 254
    /// like [`decode_int8_avx2`].
    ///
    /// # Safety
    ///
    /// AVX2 required; `codes` and `panel` must cover `8·k` elements and
    /// `levels` 255 entries.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn pack_panel8_int8_avx2(
        codes: *const u8,
        levels: *const f32,
        k: usize,
        panel: *mut f32,
    ) {
        let cap = _mm256_set1_epi32(254);
        let mut j = 0usize;
        while j + 8 <= k {
            let mut v = [_mm256_setzero_ps(); 8];
            for (l, slot) in v.iter_mut().enumerate() {
                let bytes = _mm_loadl_epi64(codes.add(l * k + j).cast());
                let idx = _mm256_min_epu32(_mm256_cvtepu8_epi32(bytes), cap);
                *slot = _mm256_i32gather_ps::<4>(levels, idx);
            }
            let t = transpose8x8(v);
            for (c, col) in t.iter().enumerate() {
                _mm256_storeu_ps(panel.add((j + c) * 8), *col);
            }
            j += 8;
        }
        while j < k {
            for l in 0..8 {
                *panel.add(j * 8 + l) = *levels.add((*codes.add(l * k + j)).min(254) as usize);
            }
            j += 1;
        }
    }

    /// # Safety
    ///
    /// AVX2 required; `panel` must cover `8·k` floats with every index
    /// `< k`, and `out` must cover 8 floats.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn matmul_panel8_avx2(
        panel: *const f32,
        indices: &[u32],
        init: &[f32; 8],
        out: *mut f32,
    ) {
        let mut a0 = _mm256_loadu_ps(init.as_ptr());
        let mut a1 = _mm256_setzero_ps();
        let mut a2 = _mm256_setzero_ps();
        let mut a3 = _mm256_setzero_ps();
        let mut chunks = indices.chunks_exact(4);
        for c in &mut chunks {
            a0 = _mm256_add_ps(a0, _mm256_loadu_ps(panel.add(c[0] as usize * 8)));
            a1 = _mm256_add_ps(a1, _mm256_loadu_ps(panel.add(c[1] as usize * 8)));
            a2 = _mm256_add_ps(a2, _mm256_loadu_ps(panel.add(c[2] as usize * 8)));
            a3 = _mm256_add_ps(a3, _mm256_loadu_ps(panel.add(c[3] as usize * 8)));
        }
        let mut tail = _mm256_add_ps(_mm256_add_ps(a0, a1), _mm256_add_ps(a2, a3));
        for &j in chunks.remainder() {
            tail = _mm256_add_ps(tail, _mm256_loadu_ps(panel.add(j as usize * 8)));
        }
        _mm256_storeu_ps(out, tail);
    }

    /// # Safety
    ///
    /// F16C required; both pointers must cover `len` elements.
    #[target_feature(enable = "avx2,f16c")]
    pub(super) unsafe fn decode_f16_f16c(bits: *const u16, dst: *mut f32, len: usize) {
        let mut i = 0usize;
        while i + 8 <= len {
            let h = _mm_loadu_si128(bits.add(i).cast());
            _mm256_storeu_ps(dst.add(i), _mm256_cvtph_ps(h));
            i += 8;
        }
        while i < len {
            *dst.add(i) = crate::plane::f16_to_f32(*bits.add(i));
            i += 1;
        }
    }

    /// # Safety
    ///
    /// AVX2 required; `codes` and `dst` must cover `len` elements and
    /// `levels` 255 entries.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn decode_int8_avx2(
        codes: *const u8,
        levels: *const f32,
        dst: *mut f32,
        len: usize,
    ) {
        // Valid planes only emit codes 0..=254; clamping keeps the
        // gather in bounds of the 255-entry table even for a corrupt
        // buffer (the scalar walk would panic on such input instead).
        let cap = _mm256_set1_epi32(254);
        let mut i = 0usize;
        while i + 8 <= len {
            let bytes = _mm_loadl_epi64(codes.add(i).cast());
            let idx = _mm256_min_epu32(_mm256_cvtepu8_epi32(bytes), cap);
            _mm256_storeu_ps(dst.add(i), _mm256_i32gather_ps::<4>(levels, idx));
            i += 8;
        }
        while i < len {
            *dst.add(i) = *levels.add((*codes.add(i)).min(254) as usize);
            i += 1;
        }
    }
}

#[cfg(target_arch = "x86_64")]
use avx2::{
    decode_f16_f16c, decode_int8_avx2, matmul_panel8_avx2, matvec_rows16_avx2, matvec_rows8_avx2,
    pack_rows8_avx2,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_consistent() {
        // Whatever the hardware, the label must agree with the probe
        // and the feature list must be well-formed.
        assert_eq!(isa_label(), if active() { "avx2" } else { "scalar" });
        let feats = detected_features();
        assert!(feats
            .split(',')
            .all(|f| f.chars().all(|c| c.is_ascii_alphanumeric())));
        if active() {
            assert!(feats.contains("avx2") && feats.contains("fma"));
        }
    }

    #[test]
    fn bounds_probe() {
        assert!(indices_in_bounds(&[0, 3, 7], 8));
        assert!(!indices_in_bounds(&[0, 8], 8));
        assert!(indices_in_bounds(&[], 0));
    }

    #[test]
    fn decoders_match_scalar() {
        // Decoder bit-identity on this machine's dispatch (the full
        // cross-product lives in tests/simd_equivalence.rs).
        let values: Vec<f32> = (0..37).map(|i| ((i as f32) * 0.713).sin() * 3.0).collect();
        let bits: Vec<u16> = values
            .iter()
            .map(|&v| crate::plane::f32_to_f16(v))
            .collect();
        let mut dst = vec![0.0f32; bits.len()];
        decode_f16(&bits, &mut dst);
        for (d, &b) in dst.iter().zip(&bits) {
            assert_eq!(d.to_bits(), crate::plane::f16_to_f32(b).to_bits());
        }

        let plane =
            crate::plane::QuantizedPlane::quantize(&values, crate::plane::WeightPlane::Int8)
                .unwrap()
                .unwrap();
        if let crate::plane::PlaneView::Int8 { codes, levels } = plane.view() {
            let mut dst = vec![0.0f32; codes.len()];
            decode_int8(codes, levels, &mut dst);
            let dq = plane.dequantize();
            for (d, q) in dst.iter().zip(&dq) {
                assert_eq!(d.to_bits(), q.to_bits());
            }
        } else {
            panic!("expected int8 view");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn row_kernels_match_gather_row() {
        if !active() {
            return;
        }
        let (m, k) = (16usize, 19usize);
        let rows: Vec<f32> = (0..m * k).map(|i| ((i as f32) * 0.37).cos()).collect();
        let indices: Vec<u32> = [0u32, 2, 3, 5, 7, 11, 13, 17, 18]
            .iter()
            .copied()
            .filter(|&j| (j as usize) < k)
            .collect();
        let mut init = [0.0f32; 16];
        for (l, slot) in init.iter_mut().enumerate() {
            *slot = l as f32 * 0.75 - 3.0;
        }
        let mut out16 = [0.0f32; 16];
        matvec_rows16(&rows, k, &indices, &init, &mut out16);
        let init8: [f32; 8] = init[..8].try_into().unwrap();
        let mut out = [0.0f32; 8];
        matvec_rows8(&rows[..8 * k], k, &indices, &init8, &mut out);
        let mut panel = vec![0.0f32; 8 * k];
        pack_rows8(&rows[..8 * k], k, &mut panel);
        let mut out_p = [0.0f32; 8];
        matmul_panel8(&panel, k, &indices, &init8, &mut out_p);
        for l in 0..16 {
            let scalar = crate::sparse::gather_row(&rows[l * k..(l + 1) * k], &indices, init[l]);
            assert_eq!(out16[l].to_bits(), scalar.to_bits(), "x16 lane {l}");
            if l < 8 {
                assert_eq!(out[l].to_bits(), scalar.to_bits(), "lane {l}");
                assert_eq!(out_p[l].to_bits(), scalar.to_bits(), "packed lane {l}");
                for j in 0..k {
                    assert_eq!(panel[j * 8 + l].to_bits(), rows[l * k + j].to_bits());
                }
            }
        }
    }
}
