//! Event-driven sparse spike kernels.
//!
//! Spiking networks propagate *binary* activity between layers, and at
//! realistic firing rates the overwhelming majority of each spike frame
//! is zero. The dense kernels in [`crate::linalg`] / [`crate::conv`]
//! nevertheless pay for every weight: a dense matvec reads all
//! `out × in` weights, a dense conv visits every output window. This
//! module exploits the sparsity *event-drively* — compute is proportional
//! to the number of active spikes, not the layer size:
//!
//! * [`SpikeVector`] — the event representation: flat indices of active
//!   spikes plus the logical dense length,
//! * [`sparse_matvec`] / [`sparse_matvec_bias`] — sparse×dense product
//!   that gathers only the weight columns of active inputs,
//! * [`sparse_conv2d`] — scatter-based convolution that pushes each
//!   input event through the kernel stencil,
//! * [`sparse_avg_pool2d`] / [`sparse_max_pool2d`] — pooling directly on
//!   events,
//! * [`SpikeVector::from_dense_if_sparse`] — the dense↔sparse gate: a
//!   frame converts only when it is binary and its density is at most a
//!   threshold, so the caller always takes the cheaper path.
//!
//! All kernels produce results equal to their dense counterparts up to
//! f32 summation order (the matvec gathers accumulate 4-wide, so
//! differences are pure reassociation, bounded by ~1e-5 on the
//! workspace's layer sizes); the property tests in
//! `tests/sparse_equivalence.rs` pin this down across shapes, strides,
//! paddings and densities. The batched counterparts in
//! [`crate::batched`] route through the same gather/scatter helpers and
//! are bit-identical per row.
//!
//! # Example
//!
//! ```
//! use axsnn_tensor::sparse::{sparse_matvec, SpikeVector};
//! use axsnn_tensor::{linalg, Tensor};
//!
//! # fn main() -> axsnn_tensor::Result<()> {
//! let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
//! let frame = Tensor::from_vec(vec![0.0, 1.0, 0.0], &[3])?;
//! let spikes = SpikeVector::from_dense(&frame).expect("binary frame");
//! assert_eq!(spikes.density(), 1.0 / 3.0);
//! let sparse = sparse_matvec(&w, &spikes)?;
//! let dense = linalg::matvec(&w, &frame)?;
//! assert_eq!(sparse.as_slice(), dense.as_slice());
//! # Ok(())
//! # }
//! ```

use crate::conv::Conv2dSpec;
use crate::plane::{F16Lane, F32Lane, Int8Lane, PlaneView, WeightLane};
use crate::{Result, Tensor, TensorError};

/// Default maximum density at which the sparse path is considered
/// cheaper than the dense one.
///
/// The sparse matvec gathers `out × nnz` weights against the dense
/// kernel's `out × in` stream, and the scatter conv performs
/// `nnz × Cout × K²` multiply-accumulates against the dense kernel's
/// `Cout·OH·OW·Cin·K²`; both win roughly in proportion to `1/density`,
/// with the gather/scatter's worse cache locality eating part of the
/// margin. A quarter density keeps a comfortable cushion — measured
/// crossover on the workspace's MNIST-scale layers is well above 40%.
pub const DEFAULT_DENSITY_THRESHOLD: f32 = 0.25;

/// A binary spike frame in event form: the flat indices of active spikes
/// plus the logical length of the dense frame they came from.
///
/// Indices are stored in increasing order when built through
/// [`SpikeVector::from_dense`], which scans the dense frame front to
/// back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpikeVector {
    indices: Vec<u32>,
    len: usize,
}

impl SpikeVector {
    /// Builds a spike vector from raw event indices and the dense length.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when any index is out of
    /// bounds for `len`.
    pub fn new(indices: Vec<u32>, len: usize) -> Result<Self> {
        if let Some(&bad) = indices.iter().find(|&&i| i as usize >= len) {
            return Err(TensorError::InvalidArgument {
                message: format!("spike index {bad} out of bounds for length {len}"),
            });
        }
        Ok(SpikeVector { indices, len })
    }

    /// Extracts the active indices of a *binary* dense frame.
    ///
    /// Returns `None` when any element is neither `0.0` nor `1.0` —
    /// non-binary frames (analog currents, direct-current encodings)
    /// must take the dense path because the event form carries no
    /// magnitudes.
    pub fn from_dense(t: &Tensor) -> Option<Self> {
        Self::gather(t.as_slice(), usize::MAX)
    }

    /// Extracts a binary frame's events only when its density is at most
    /// `max_density` — the dense↔sparse gate.
    ///
    /// Returns `None` when the frame is non-binary **or** denser than
    /// the threshold, in which case the caller should use the dense
    /// kernels. The scan aborts as soon as too many events are seen, so
    /// rejecting a dense frame costs at most `max_density·len + 1`
    /// index pushes.
    pub fn from_dense_if_sparse(t: &Tensor, max_density: f32) -> Option<Self> {
        Self::from_slice_if_sparse(t.as_slice(), max_density)
    }

    /// [`SpikeVector::from_dense_if_sparse`] on a raw slice — the form
    /// the fused batch engine uses to gate rows of a stacked `[B, n]`
    /// block without materializing per-row tensors.
    pub fn from_slice_if_sparse(data: &[f32], max_density: f32) -> Option<Self> {
        if max_density <= 0.0 || max_density.is_nan() {
            return None;
        }
        let cap = (max_density as f64 * data.len() as f64).floor() as usize;
        Self::gather(data, cap)
    }

    fn gather(t: &[f32], max_events: usize) -> Option<Self> {
        let mut indices = Vec::new();
        for (i, &v) in t.iter().enumerate() {
            if v == 0.0 {
                continue;
            }
            if v != 1.0 || indices.len() >= max_events {
                return None;
            }
            indices.push(i as u32);
        }
        Some(SpikeVector {
            indices,
            len: t.len(),
        })
    }

    /// Number of active spikes (events).
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Logical dense length of the frame.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the logical frame has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fraction of active elements, in `[0, 1]`; `0.0` for an empty
    /// frame.
    pub fn density(&self) -> f32 {
        if self.len == 0 {
            0.0
        } else {
            self.indices.len() as f32 / self.len as f32
        }
    }

    /// The flat indices of active spikes.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Materializes the dense binary frame with the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the shape volume
    /// differs from the spike vector's logical length.
    pub fn to_dense(&self, dims: &[usize]) -> Result<Tensor> {
        let mut out = Tensor::zeros(dims);
        if out.len() != self.len {
            return Err(TensorError::LengthMismatch {
                expected: self.len,
                actual: out.len(),
            });
        }
        let data = out.as_mut_slice();
        for &i in &self.indices {
            data[i as usize] = 1.0;
        }
        Ok(out)
    }
}

/// Gathers `row[j]` over the active indices, 4-wide.
///
/// The naive single-accumulator gather is autovectorization-hostile
/// (indexed loads with a serial dependency through one accumulator);
/// four independent accumulators break the dependency chain so the
/// loads pipeline. The combine order `(a0 + a1) + (a2 + a3)` is fixed,
/// and every sparse matvec/matmul kernel in the workspace routes
/// through this one function, so the per-sample and batched engines
/// produce bit-identical sums for the same row.
#[inline]
pub(crate) fn gather_row(row: &[f32], indices: &[u32], init: f32) -> f32 {
    gather_row_lane(F32Lane(row), indices, init)
}

/// The lane-generic body of [`gather_row`]: `row.load` is a plain slice
/// read for the f32 lane (identical codegen to the pre-plane kernel)
/// and an in-register dequantization for the f16/int8 lanes. The
/// accumulation structure is the same for every lane, which is what
/// makes a planed gather bit-identical to the f32 gather over the
/// dequantized weights.
#[inline]
pub(crate) fn gather_row_lane<L: WeightLane>(row: L, indices: &[u32], init: f32) -> f32 {
    let mut chunks = indices.chunks_exact(4);
    let (mut a0, mut a1, mut a2, mut a3) = (init, 0.0f32, 0.0f32, 0.0f32);
    for c in &mut chunks {
        a0 += row.load(c[0] as usize);
        a1 += row.load(c[1] as usize);
        a2 += row.load(c[2] as usize);
        a3 += row.load(c[3] as usize);
    }
    let mut tail = (a0 + a1) + (a2 + a3);
    for &j in chunks.remainder() {
        tail += row.load(j as usize);
    }
    tail
}

/// Reference single-accumulator gather kept for equivalence checks of
/// the unrolled [`gather_row`].
#[cfg(test)]
fn gather_row_naive(row: &[f32], indices: &[u32], init: f32) -> f32 {
    let mut acc = init;
    for &j in indices {
        acc += row[j as usize];
    }
    acc
}

/// Scatters one event's weight stencil column onto the output planes:
/// `out[oc·ohw + obase] += w[oc·wstride + wbase]` for every output
/// channel, unrolled 4-wide.
///
/// Both sides of the accumulate are strided, which defeats
/// autovectorization; four independent read-modify-write pairs per
/// iteration pipeline the loads and stores. Each output cell still
/// receives exactly one add per event, so results are bit-identical to
/// the naive loop. Shared by the per-sample and batched scatter convs.
#[inline]
pub(crate) fn scatter_stencil(
    out: &mut [f32],
    wv: &[f32],
    out_channels: usize,
    ohw: usize,
    wstride: usize,
    obase: usize,
    wbase: usize,
) {
    let mut oc = 0usize;
    while oc + 4 <= out_channels {
        out[oc * ohw + obase] += wv[oc * wstride + wbase];
        out[(oc + 1) * ohw + obase] += wv[(oc + 1) * wstride + wbase];
        out[(oc + 2) * ohw + obase] += wv[(oc + 2) * wstride + wbase];
        out[(oc + 3) * ohw + obase] += wv[(oc + 3) * wstride + wbase];
        oc += 4;
    }
    while oc < out_channels {
        out[oc * ohw + obase] += wv[oc * wstride + wbase];
        oc += 1;
    }
}

fn check_matrix(a: &Tensor, x: &SpikeVector, op: &'static str) -> Result<(usize, usize)> {
    let dims = a.shape().dims();
    if dims.len() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: dims.len(),
            op,
        });
    }
    if x.len() != dims[1] {
        return Err(TensorError::ShapeMismatch {
            lhs: dims.to_vec(),
            rhs: vec![x.len()],
            op,
        });
    }
    Ok((dims[0], dims[1]))
}

/// Sparse matrix–vector product `y = A·s` where `s` is a binary spike
/// vector: accumulates only the weight columns of active inputs.
///
/// Each output row is a gather over the active indices within that
/// contiguous weight row, so compute and memory traffic scale with
/// `rows × nnz` instead of `rows × cols`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for a non-matrix `a` and
/// [`TensorError::ShapeMismatch`] when the spike length differs from the
/// column count.
pub fn sparse_matvec(a: &Tensor, x: &SpikeVector) -> Result<Tensor> {
    let (m, k) = check_matrix(a, x, "sparse_matvec")?;
    let mut out = vec![0.0f32; m];
    matvec_rows_dispatch(a.as_slice(), m, k, x.indices(), None, &mut out);
    Tensor::from_vec(out, &[m])
}

/// The f32 matvec body shared by [`sparse_matvec`] and
/// [`sparse_matvec_bias`]: 8-row AVX2 tiles when [`crate::simd`] is
/// active, then the scalar [`gather_row`] for the remainder rows (and
/// for everything under scalar dispatch). Per output row both paths
/// run the identical accumulation order, so the dispatch choice never
/// changes a bit of the result.
fn matvec_rows_dispatch(
    av: &[f32],
    m: usize,
    k: usize,
    indices: &[u32],
    bv: Option<&[f32]>,
    out: &mut [f32],
) {
    let mut i = 0usize;
    if crate::simd::active() && crate::simd::indices_in_bounds(indices, k) {
        // 16-row tiles first: the matvec shape is L2-latency-bound, so
        // doubling the independent gather chains in flight matters more
        // than tile residency. The 8-row kernel mops up, the scalar
        // loop takes the rest — all three orders are bit-identical.
        while i + 2 * crate::simd::ROW_LANES <= m {
            let mut init = [0.0f32; 2 * crate::simd::ROW_LANES];
            if let Some(bv) = bv {
                init.copy_from_slice(&bv[i..i + 2 * crate::simd::ROW_LANES]);
            }
            crate::simd::matvec_rows16(
                &av[i * k..(i + 2 * crate::simd::ROW_LANES) * k],
                k,
                indices,
                &init,
                &mut out[i..i + 2 * crate::simd::ROW_LANES],
            );
            i += 2 * crate::simd::ROW_LANES;
        }
        while i + crate::simd::ROW_LANES <= m {
            let mut init = [0.0f32; crate::simd::ROW_LANES];
            if let Some(bv) = bv {
                init.copy_from_slice(&bv[i..i + crate::simd::ROW_LANES]);
            }
            crate::simd::matvec_rows8(
                &av[i * k..(i + crate::simd::ROW_LANES) * k],
                k,
                indices,
                &init,
                &mut out[i..i + crate::simd::ROW_LANES],
            );
            i += crate::simd::ROW_LANES;
        }
    }
    while i < m {
        let row = &av[i * k..(i + 1) * k];
        out[i] = gather_row(row, indices, bv.map_or(0.0, |bv| bv[i]));
        i += 1;
    }
}

/// [`sparse_matvec`] plus a bias: `y = A·s + b`, matching the fused
/// form the spiking layers use.
///
/// # Errors
///
/// As [`sparse_matvec`], plus [`TensorError::ShapeMismatch`] when the
/// bias length differs from the row count.
pub fn sparse_matvec_bias(a: &Tensor, x: &SpikeVector, bias: &Tensor) -> Result<Tensor> {
    let (m, k) = check_matrix(a, x, "sparse_matvec_bias")?;
    if bias.len() != m {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![m, k],
            rhs: bias.shape().dims().to_vec(),
            op: "sparse_matvec_bias",
        });
    }
    let mut out = vec![0.0f32; m];
    matvec_rows_dispatch(
        a.as_slice(),
        m,
        k,
        x.indices(),
        Some(bias.as_slice()),
        &mut out,
    );
    Tensor::from_vec(out, &[m])
}

/// The portable scalar reference for [`sparse_matvec_bias`] — the
/// single source of truth for the kernel's semantics, never dispatched
/// to SIMD. The `simd_equivalence` suite pins the dispatching kernel
/// bit-identical to this one on every shape, density and remainder lane
/// count; the SIMD bench measures the dispatch against it.
///
/// # Errors
///
/// As [`sparse_matvec_bias`].
pub fn sparse_matvec_bias_scalar(a: &Tensor, x: &SpikeVector, bias: &Tensor) -> Result<Tensor> {
    let (m, k) = check_matrix(a, x, "sparse_matvec_bias")?;
    if bias.len() != m {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![m, k],
            rhs: bias.shape().dims().to_vec(),
            op: "sparse_matvec_bias",
        });
    }
    let av = a.as_slice();
    let bv = bias.as_slice();
    let mut out = vec![0.0f32; m];
    for (i, o) in out.iter_mut().enumerate() {
        let row = &av[i * k..(i + 1) * k];
        *o = gather_row(row, x.indices(), bv[i]);
    }
    Tensor::from_vec(out, &[m])
}

/// [`sparse_matvec_bias`] streaming a reduced-precision weight plane:
/// `y = dequant(W)·s + b` with each weight dequantized in-register and
/// every accumulate in f32.
///
/// The gather structure is `gather_row`'s, so the result is
/// bit-identical to [`sparse_matvec_bias`] over the plane's
/// [`crate::plane::QuantizedPlane::dequantize`] tensor — quantizing the
/// storage changes which bits are streamed, never the arithmetic.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when the plane does not hold
/// `rows × cols` weights and [`TensorError::ShapeMismatch`] when the
/// spike or bias length disagrees with `shape`.
pub fn sparse_matvec_bias_planed(
    weights: PlaneView<'_>,
    shape: (usize, usize),
    x: &SpikeVector,
    bias: &Tensor,
) -> Result<Tensor> {
    let (m, k) = shape;
    if weights.len() != m * k {
        return Err(TensorError::LengthMismatch {
            expected: m * k,
            actual: weights.len(),
        });
    }
    if x.len() != k {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![m, k],
            rhs: vec![x.len()],
            op: "sparse_matvec_bias_planed",
        });
    }
    if bias.len() != m {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![m, k],
            rhs: bias.shape().dims().to_vec(),
            op: "sparse_matvec_bias_planed",
        });
    }
    let out = match weights {
        PlaneView::F16(bits) => matvec_bias_lane(F16Lane(bits), m, k, x, bias.as_slice()),
        PlaneView::Int8 { codes, levels } => {
            matvec_bias_lane(Int8Lane { codes, levels }, m, k, x, bias.as_slice())
        }
    };
    Tensor::from_vec(out, &[m])
}

fn matvec_bias_lane<L: WeightLane>(
    weights: L,
    m: usize,
    k: usize,
    x: &SpikeVector,
    bv: &[f32],
) -> Vec<f32> {
    let mut out = vec![0.0f32; m];
    for (i, o) in out.iter_mut().enumerate() {
        *o = gather_row_lane(weights.slice(i * k, (i + 1) * k), x.indices(), bv[i]);
    }
    out
}

/// [`sparse_matvec_bias`] in the *dense accumulation order*: a single
/// accumulator per output row gathering the active columns in ascending
/// index order, with the bias added **after** the sum.
///
/// For a binary frame the dense path `matvec(a, x).add(bias)` adds
/// `a[i][j]·x[j]` over all `j` ascending — the inactive columns
/// contribute exact zeros — and then adds the bias, so this kernel's
/// result per element is the same `f32` value the dense kernels
/// produce. The event-form BPTT tape uses it on recorded steps so the
/// sparse training path stays numerically interchangeable with the
/// dense tape at any density (the fast 4-wide [`sparse_matvec_bias`]
/// reassociates its accumulators and is reserved for inference).
///
/// # Errors
///
/// As [`sparse_matvec_bias`].
pub fn sparse_matvec_bias_exact(a: &Tensor, x: &SpikeVector, bias: &Tensor) -> Result<Tensor> {
    let (m, k) = check_matrix(a, x, "sparse_matvec_bias_exact")?;
    if bias.len() != m {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![m, k],
            rhs: bias.shape().dims().to_vec(),
            op: "sparse_matvec_bias_exact",
        });
    }
    let av = a.as_slice();
    let bv = bias.as_slice();
    let mut out = vec![0.0f32; m];
    for (i, o) in out.iter_mut().enumerate() {
        let row = &av[i * k..(i + 1) * k];
        let mut acc = 0.0f32;
        for &j in x.indices() {
            acc += row[j as usize];
        }
        *o = acc + bv[i];
    }
    Tensor::from_vec(out, &[m])
}

/// Event-masked rank-1 gradient accumulation
/// `acc[i][j] += g[i]` for every active column `j` — the sparse form of
/// the linear-layer weight-gradient update `acc += g ⊗ x` for a binary
/// `x`, touching `rows × nnz` cells instead of `rows × cols`.
///
/// The dense update adds `g[i]·x[j]`, which is `g[i]` exactly at active
/// columns and an exact zero elsewhere, so each accumulator cell ends
/// at the same `f32` value as the dense path.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix `acc` /
/// non-vector `g` and [`TensorError::ShapeMismatch`] when `acc` is not
/// `[g.len, x.len]`.
pub fn sparse_outer_acc(acc: &mut Tensor, g: &Tensor, x: &SpikeVector) -> Result<()> {
    if acc.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: acc.shape().rank(),
            op: "sparse_outer_acc",
        });
    }
    if g.shape().rank() != 1 {
        return Err(TensorError::RankMismatch {
            expected: 1,
            actual: g.shape().rank(),
            op: "sparse_outer_acc",
        });
    }
    let (m, k) = (acc.shape().dims()[0], acc.shape().dims()[1]);
    if g.len() != m || x.len() != k {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![m, k],
            rhs: vec![g.len(), x.len()],
            op: "sparse_outer_acc",
        });
    }
    let gv = g.as_slice();
    let accv = acc.as_mut_slice();
    for (i, &gi) in gv.iter().enumerate() {
        if gi == 0.0 {
            continue;
        }
        let row = &mut accv[i * k..(i + 1) * k];
        for &j in x.indices() {
            row[j as usize] += gi;
        }
    }
    Ok(())
}

fn check_conv_input(
    input: &SpikeVector,
    in_hw: (usize, usize),
    weight: &Tensor,
    spec: &Conv2dSpec,
) -> Result<()> {
    check_conv_geometry(input.len(), in_hw, weight, spec)
}

pub(crate) fn check_conv_geometry(
    input_len: usize,
    in_hw: (usize, usize),
    weight: &Tensor,
    spec: &Conv2dSpec,
) -> Result<()> {
    let wdims = weight.shape().dims();
    let expected = [
        spec.out_channels,
        spec.in_channels,
        spec.kernel,
        spec.kernel,
    ];
    if wdims != expected {
        return Err(TensorError::ShapeMismatch {
            lhs: wdims.to_vec(),
            rhs: expected.to_vec(),
            op: "sparse_conv2d weight",
        });
    }
    check_conv_geometry_len(input_len, in_hw, weight.len(), spec)
}

/// [`check_conv_geometry`] for a flat weight buffer (a quantized plane
/// carries no shape metadata, only its length).
pub(crate) fn check_conv_geometry_len(
    input_len: usize,
    in_hw: (usize, usize),
    weight_len: usize,
    spec: &Conv2dSpec,
) -> Result<()> {
    if spec.kernel == 0 || spec.stride == 0 {
        return Err(TensorError::InvalidArgument {
            message: "conv2d kernel and stride must be non-zero".into(),
        });
    }
    let (h, w) = in_hw;
    if input_len != spec.in_channels * h * w {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![input_len],
            rhs: vec![spec.in_channels, h, w],
            op: "sparse_conv2d input",
        });
    }
    let expected_w = spec.out_channels * spec.in_channels * spec.kernel * spec.kernel;
    if weight_len != expected_w {
        return Err(TensorError::LengthMismatch {
            expected: expected_w,
            actual: weight_len,
        });
    }
    if h + 2 * spec.padding < spec.kernel || w + 2 * spec.padding < spec.kernel {
        return Err(TensorError::InvalidArgument {
            message: format!(
                "conv2d kernel {} larger than padded input {}x{}",
                spec.kernel,
                h + 2 * spec.padding,
                w + 2 * spec.padding
            ),
        });
    }
    Ok(())
}

/// Scatter-based sparse 2-D convolution: `events [Cin·H·W] → output
/// [Cout,OH,OW]`.
///
/// Instead of sliding every output window over the input, each active
/// spike *pushes* its weight stencil onto the affected output positions,
/// so the multiply-accumulate count is `nnz × Cout × K²` regardless of
/// the layer's spatial size.
///
/// # Errors
///
/// Returns an error when the spike length, weight shape `[Cout,Cin,K,K]`
/// or bias length disagree with `spec` and `in_hw`, or the kernel does
/// not fit in the padded input.
pub fn sparse_conv2d(
    input: &SpikeVector,
    in_hw: (usize, usize),
    weight: &Tensor,
    bias: &Tensor,
    spec: &Conv2dSpec,
) -> Result<Tensor> {
    check_conv_input(input, in_hw, weight, spec)?;
    let (h, w) = in_hw;
    let (oh, ow) = spec.output_hw(h, w);
    let mut out = vec![0.0f32; spec.out_channels * oh * ow];
    sparse_conv2d_into(input, in_hw, weight, bias, spec, &mut out)?;
    Tensor::from_vec(out, &[spec.out_channels, oh, ow])
}

/// [`sparse_conv2d`] writing into a caller-provided `[Cout·OH·OW]`
/// buffer — the building block the batched engine uses to scatter each
/// sample's events directly into its row of a `[B, Cout·OH·OW]` block
/// without an intermediate allocation.
///
/// The buffer is fully overwritten (bias fill, then event scatter).
///
/// # Errors
///
/// As [`sparse_conv2d`], plus [`TensorError::LengthMismatch`] when the
/// buffer length differs from the output volume.
pub fn sparse_conv2d_into(
    input: &SpikeVector,
    in_hw: (usize, usize),
    weight: &Tensor,
    bias: &Tensor,
    spec: &Conv2dSpec,
    out: &mut [f32],
) -> Result<()> {
    check_conv_input(input, in_hw, weight, spec)?;
    if bias.len() != spec.out_channels {
        return Err(TensorError::ShapeMismatch {
            lhs: bias.shape().dims().to_vec(),
            rhs: vec![spec.out_channels],
            op: "sparse_conv2d bias",
        });
    }
    let (h, w) = in_hw;
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    let ohw = oh * ow;
    let wstride = spec.in_channels * k * k;
    let wv = weight.as_slice();

    if out.len() != spec.out_channels * ohw {
        return Err(TensorError::LengthMismatch {
            expected: spec.out_channels * ohw,
            actual: out.len(),
        });
    }
    for (oc, &b) in bias.as_slice().iter().enumerate() {
        out[oc * ohw..(oc + 1) * ohw].fill(b);
    }

    for &flat in input.indices() {
        let flat = flat as usize;
        let ic = flat / (h * w);
        let rem = flat % (h * w);
        let iy = rem / w;
        let ix = rem % w;
        // The padded input row iy + padding is seen by output row oy at
        // kernel row ky exactly when oy·stride + ky == iy + padding.
        for ky in 0..k {
            let oy_num = iy + spec.padding;
            if oy_num < ky {
                break; // ky only grows; no further kernel row can match
            }
            let oy_off = oy_num - ky;
            if !oy_off.is_multiple_of(spec.stride) {
                continue;
            }
            let oy = oy_off / spec.stride;
            if oy >= oh {
                continue;
            }
            for kx in 0..k {
                let ox_num = ix + spec.padding;
                if ox_num < kx {
                    break;
                }
                let ox_off = ox_num - kx;
                if !ox_off.is_multiple_of(spec.stride) {
                    continue;
                }
                let ox = ox_off / spec.stride;
                if ox >= ow {
                    continue;
                }
                let obase = oy * ow + ox;
                let wbase = ic * k * k + ky * k + kx;
                scatter_stencil(out, wv, spec.out_channels, ohw, wstride, obase, wbase);
            }
        }
    }
    Ok(())
}

fn check_pool(input: &SpikeVector, dims: &[usize], k: usize) -> Result<(usize, usize, usize)> {
    if dims.len() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: dims.len(),
            op: "sparse_pool2d",
        });
    }
    if k == 0 {
        return Err(TensorError::InvalidArgument {
            message: "pool window must be non-zero".into(),
        });
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    if input.len() != c * h * w {
        return Err(TensorError::LengthMismatch {
            expected: c * h * w,
            actual: input.len(),
        });
    }
    if h % k != 0 || w % k != 0 {
        return Err(TensorError::InvalidArgument {
            message: format!("pool window {k} does not divide input {h}x{w}"),
        });
    }
    Ok((c, h, w))
}

/// Average pooling on events: each active spike contributes `1/k²` to
/// its window, touching only `nnz` cells.
///
/// # Errors
///
/// Returns an error for a non-`[C,H,W]` `dims`, `k == 0`, a length
/// mismatch, or spatial dimensions not divisible by `k`.
pub fn sparse_avg_pool2d(input: &SpikeVector, dims: &[usize], k: usize) -> Result<Tensor> {
    let (c, h, w) = check_pool(input, dims, k)?;
    let (oh, ow) = (h / k, w / k);
    let inv = 1.0 / (k * k) as f32;
    let mut out = vec![0.0f32; c * oh * ow];
    for &flat in input.indices() {
        let flat = flat as usize;
        let ch = flat / (h * w);
        let rem = flat % (h * w);
        let (iy, ix) = (rem / w, rem % w);
        out[ch * oh * ow + (iy / k) * ow + ix / k] += inv;
    }
    Tensor::from_vec(out, &[c, oh, ow])
}

/// Max pooling on events: a window of a binary frame maxes to `1.0`
/// exactly when it contains at least one spike.
///
/// This is the *forward value* only — it carries no argmax tape, so the
/// layer stack uses it exclusively on non-recorded (inference) steps.
///
/// # Errors
///
/// Same conditions as [`sparse_avg_pool2d`].
pub fn sparse_max_pool2d(input: &SpikeVector, dims: &[usize], k: usize) -> Result<Tensor> {
    let (c, h, w) = check_pool(input, dims, k)?;
    let (oh, ow) = (h / k, w / k);
    let mut out = vec![0.0f32; c * oh * ow];
    for &flat in input.indices() {
        let flat = flat as usize;
        let ch = flat / (h * w);
        let rem = flat % (h * w);
        let (iy, ix) = (rem / w, rem % w);
        out[ch * oh * ow + (iy / k) * ow + ix / k] = 1.0;
    }
    Tensor::from_vec(out, &[c, oh, ow])
}

/// Gathers one event's gradient stencil from the output planes into the
/// weight gradient: `gw[oc·wstride + wbase] += g[oc·ohw + obase]` for
/// every output channel, unrolled 4-wide — the transpose of
/// [`scatter_stencil`]. Each weight cell receives exactly one add per
/// (event, kernel-offset) pair, so the unroll reorders nothing.
#[inline]
fn gather_stencil(
    gw: &mut [f32],
    gv: &[f32],
    out_channels: usize,
    ohw: usize,
    wstride: usize,
    obase: usize,
    wbase: usize,
) {
    let mut oc = 0usize;
    while oc + 4 <= out_channels {
        gw[oc * wstride + wbase] += gv[oc * ohw + obase];
        gw[(oc + 1) * wstride + wbase] += gv[(oc + 1) * ohw + obase];
        gw[(oc + 2) * wstride + wbase] += gv[(oc + 2) * ohw + obase];
        gw[(oc + 3) * wstride + wbase] += gv[(oc + 3) * ohw + obase];
        oc += 4;
    }
    while oc < out_channels {
        gw[oc * wstride + wbase] += gv[oc * ohw + obase];
        oc += 1;
    }
}

/// Event-masked backward pass of a 2-D convolution over a *binary*
/// input recorded in event form: computes the same three gradients as
/// [`crate::conv::conv2d_backward`] with the weight gradient driven by
/// the input events instead of the full dense input.
///
/// * **Weight gradient** — each active input spike gathers the output
///   gradients its stencil touched (`nnz × Cout × K²` accumulates
///   instead of `Cout·OH·OW·Cin·K²`). Per weight cell the contributions
///   arrive in the same ascending `(oy, ox)` order as the dense
///   backward, and the dense path's inactive-input contributions are
///   exact zeros, so each cell ends at the same `f32` value.
/// * **Input and bias gradients** — computed with the dense backward's
///   own loop structure (they are dense quantities: every input
///   position needs its gradient for the upstream layer), bit-identical
///   to [`crate::conv::conv2d_backward`].
///
/// # Errors
///
/// As [`sparse_conv2d`], plus [`TensorError::ShapeMismatch`] when
/// `grad_out` does not have the forward output shape.
pub fn sparse_conv2d_backward(
    input: &SpikeVector,
    in_hw: (usize, usize),
    weight: &Tensor,
    grad_out: &Tensor,
    spec: &Conv2dSpec,
) -> Result<crate::conv::Conv2dGrads> {
    check_conv_input(input, in_hw, weight, spec)?;
    let (h, w) = in_hw;
    let (oh, ow) = spec.output_hw(h, w);
    if grad_out.shape().dims() != [spec.out_channels, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_out.shape().dims().to_vec(),
            rhs: vec![spec.out_channels, oh, ow],
            op: "sparse_conv2d_backward grad_out",
        });
    }
    let k = spec.kernel;
    let ohw = oh * ow;
    let wstride = spec.in_channels * k * k;
    let wv = weight.as_slice();
    let gv = grad_out.as_slice();
    let mut gi = vec![0.0f32; spec.in_channels * h * w];
    let mut gw = vec![0.0f32; spec.out_channels * wstride];
    let mut gb = vec![0.0f32; spec.out_channels];

    // Input + bias gradients: the dense backward's exact loop (minus
    // the weight-gradient update), so both stay bit-identical to
    // `conv2d_backward`.
    for oc in 0..spec.out_channels {
        let wbase_oc = oc * wstride;
        for oy in 0..oh {
            for ox in 0..ow {
                let g = gv[oc * ohw + oy * ow + ox];
                if g == 0.0 {
                    continue;
                }
                gb[oc] += g;
                let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
                let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
                for ic in 0..spec.in_channels {
                    let ibase = ic * h * w;
                    let wbase = wbase_oc + ic * k * k;
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let irow = ibase + iy as usize * w;
                        let wrow = wbase + ky * k;
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            gi[irow + ix as usize] += g * wv[wrow + kx];
                        }
                    }
                }
            }
        }
    }

    // Weight gradient: event-driven, mirroring the scatter conv's
    // coordinate arithmetic in gather direction.
    for &flat in input.indices() {
        let flat = flat as usize;
        let ic = flat / (h * w);
        let rem = flat % (h * w);
        let iy = rem / w;
        let ix = rem % w;
        for ky in 0..k {
            let oy_num = iy + spec.padding;
            if oy_num < ky {
                break;
            }
            let oy_off = oy_num - ky;
            if !oy_off.is_multiple_of(spec.stride) {
                continue;
            }
            let oy = oy_off / spec.stride;
            if oy >= oh {
                continue;
            }
            for kx in 0..k {
                let ox_num = ix + spec.padding;
                if ox_num < kx {
                    break;
                }
                let ox_off = ox_num - kx;
                if !ox_off.is_multiple_of(spec.stride) {
                    continue;
                }
                let ox = ox_off / spec.stride;
                if ox >= ow {
                    continue;
                }
                let obase = oy * ow + ox;
                let wbase = ic * k * k + ky * k + kx;
                gather_stencil(&mut gw, gv, spec.out_channels, ohw, wstride, obase, wbase);
            }
        }
    }

    Ok(crate::conv::Conv2dGrads {
        input: Tensor::from_vec(gi, &[spec.in_channels, h, w])?,
        weight: Tensor::from_vec(gw, &[spec.out_channels, spec.in_channels, k, k])?,
        bias: Tensor::from_vec(gb, &[spec.out_channels])?,
    })
}

/// Reference scatter conv with the pre-unroll single-step `oc` loop,
/// kept for equivalence checks of the unrolled [`scatter_stencil`]
/// path. Bit-identical to [`sparse_conv2d`]: each output cell receives
/// the same adds in the same order.
#[cfg(test)]
pub(crate) fn sparse_conv2d_naive(
    input: &SpikeVector,
    in_hw: (usize, usize),
    weight: &Tensor,
    bias: &Tensor,
    spec: &Conv2dSpec,
) -> Result<Tensor> {
    check_conv_input(input, in_hw, weight, spec)?;
    let (h, w) = in_hw;
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    let ohw = oh * ow;
    let wstride = spec.in_channels * k * k;
    let wv = weight.as_slice();
    let mut out = vec![0.0f32; spec.out_channels * ohw];
    for (oc, &b) in bias.as_slice().iter().enumerate() {
        out[oc * ohw..(oc + 1) * ohw].fill(b);
    }
    for &flat in input.indices() {
        let flat = flat as usize;
        let ic = flat / (h * w);
        let rem = flat % (h * w);
        let (iy, ix) = (rem / w, rem % w);
        for ky in 0..k {
            let oy_num = iy + spec.padding;
            if oy_num < ky {
                break;
            }
            let oy_off = oy_num - ky;
            if !oy_off.is_multiple_of(spec.stride) {
                continue;
            }
            let oy = oy_off / spec.stride;
            if oy >= oh {
                continue;
            }
            for kx in 0..k {
                let ox_num = ix + spec.padding;
                if ox_num < kx {
                    break;
                }
                let ox_off = ox_num - kx;
                if !ox_off.is_multiple_of(spec.stride) {
                    continue;
                }
                let ox = ox_off / spec.stride;
                if ox >= ow {
                    continue;
                }
                let obase = oy * ow + ox;
                let wbase = ic * k * k + ky * k + kx;
                for oc in 0..spec.out_channels {
                    out[oc * ohw + obase] += wv[oc * wstride + wbase];
                }
            }
        }
    }
    Tensor::from_vec(out, &[spec.out_channels, oh, ow])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{avg_pool2d, conv2d, max_pool2d};
    use crate::linalg;

    fn binary_frame(len: usize, every: usize) -> Tensor {
        let data: Vec<f32> = (0..len)
            .map(|i| if i % every == 0 { 1.0 } else { 0.0 })
            .collect();
        Tensor::from_vec(data, &[len]).unwrap()
    }

    #[test]
    fn from_dense_extracts_indices() {
        let t = Tensor::from_vec(vec![0.0, 1.0, 0.0, 1.0], &[4]).unwrap();
        let s = SpikeVector::from_dense(&t).unwrap();
        assert_eq!(s.indices(), &[1, 3]);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.len(), 4);
        assert_eq!(s.density(), 0.5);
    }

    #[test]
    fn from_dense_rejects_non_binary() {
        let t = Tensor::from_vec(vec![0.0, 0.5], &[2]).unwrap();
        assert!(SpikeVector::from_dense(&t).is_none());
        let neg = Tensor::from_vec(vec![-1.0, 0.0], &[2]).unwrap();
        assert!(SpikeVector::from_dense(&neg).is_none());
    }

    #[test]
    fn density_gate_rejects_dense_frames() {
        let t = binary_frame(100, 2); // 50% dense
        assert!(SpikeVector::from_dense_if_sparse(&t, 0.25).is_none());
        assert!(SpikeVector::from_dense_if_sparse(&t, 0.5).is_some());
        assert!(SpikeVector::from_dense_if_sparse(&t, 0.0).is_none());
        let sparse = binary_frame(100, 10); // 10% dense
        let s = SpikeVector::from_dense_if_sparse(&sparse, 0.25).unwrap();
        assert_eq!(s.nnz(), 10);
    }

    #[test]
    fn to_dense_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[2, 3]).unwrap();
        let s = SpikeVector::from_dense(&t).unwrap();
        let back = s.to_dense(&[2, 3]).unwrap();
        assert_eq!(back, t);
        assert!(s.to_dense(&[7]).is_err());
    }

    #[test]
    fn new_validates_bounds() {
        assert!(SpikeVector::new(vec![0, 3], 4).is_ok());
        assert!(SpikeVector::new(vec![4], 4).is_err());
    }

    #[test]
    fn matvec_matches_dense() {
        let w = Tensor::from_vec((0..20).map(|i| i as f32 * 0.3 - 2.0).collect(), &[4, 5]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.0], &[5]).unwrap();
        let s = SpikeVector::from_dense(&x).unwrap();
        let sparse = sparse_matvec(&w, &s).unwrap();
        let dense = linalg::matvec(&w, &x).unwrap();
        for (a, b) in sparse.as_slice().iter().zip(dense.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn matvec_bias_matches_dense() {
        let w = Tensor::from_vec((0..12).map(|i| (i as f32).sin()).collect(), &[3, 4]).unwrap();
        let b = Tensor::from_vec(vec![0.1, -0.2, 0.3], &[3]).unwrap();
        let x = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[4]).unwrap();
        let s = SpikeVector::from_dense(&x).unwrap();
        let sparse = sparse_matvec_bias(&w, &s, &b).unwrap();
        let dense = linalg::matvec(&w, &x).unwrap().add(&b).unwrap();
        for (a, d) in sparse.as_slice().iter().zip(dense.as_slice()) {
            assert!((a - d).abs() < 1e-6);
        }
    }

    #[test]
    fn matvec_shape_errors() {
        let w = Tensor::zeros(&[3, 4]);
        let s = SpikeVector::new(vec![0], 5).unwrap();
        assert!(sparse_matvec(&w, &s).is_err());
        let v = Tensor::zeros(&[4]);
        let s4 = SpikeVector::new(vec![0], 4).unwrap();
        assert!(sparse_matvec(&v, &s4).is_err());
        let bias = Tensor::zeros(&[2]);
        let w34 = Tensor::zeros(&[3, 4]);
        assert!(sparse_matvec_bias(&w34, &s4, &bias).is_err());
    }

    #[test]
    fn conv_matches_dense_all_geometries() {
        for &(stride, padding) in &[(1usize, 0usize), (1, 1), (2, 0), (2, 1), (1, 2)] {
            let spec = Conv2dSpec {
                in_channels: 2,
                out_channels: 3,
                kernel: 3,
                stride,
                padding,
            };
            let (h, w) = (6, 7);
            let input_data: Vec<f32> = (0..2 * h * w)
                .map(|i| if i % 7 == 0 { 1.0 } else { 0.0 })
                .collect();
            let input = Tensor::from_vec(input_data, &[2, h, w]).unwrap();
            let weight = Tensor::from_vec(
                (0..3 * 2 * 9).map(|i| (i as f32 * 0.77).cos()).collect(),
                &[3, 2, 3, 3],
            )
            .unwrap();
            let bias = Tensor::from_vec(vec![0.5, -1.0, 0.25], &[3]).unwrap();
            let dense = conv2d(&input, &weight, &bias, &spec).unwrap();
            let events = SpikeVector::from_dense(&input).unwrap();
            let sparse = sparse_conv2d(&events, (h, w), &weight, &bias, &spec).unwrap();
            assert_eq!(sparse.shape().dims(), dense.shape().dims());
            for (a, b) in sparse.as_slice().iter().zip(dense.as_slice()) {
                assert!(
                    (a - b).abs() < 1e-5,
                    "stride {stride} pad {padding}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn conv_empty_frame_is_pure_bias() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 2,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let events = SpikeVector::new(vec![], 16).unwrap();
        let weight = Tensor::ones(&[2, 1, 3, 3]);
        let bias = Tensor::from_vec(vec![0.25, -0.5], &[2]).unwrap();
        let out = sparse_conv2d(&events, (4, 4), &weight, &bias, &spec).unwrap();
        for (i, &v) in out.as_slice().iter().enumerate() {
            let expected = if i < 16 { 0.25 } else { -0.5 };
            assert_eq!(v, expected);
        }
    }

    #[test]
    fn conv_validation() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 3,
            stride: 1,
            padding: 0,
        };
        let events = SpikeVector::new(vec![], 16).unwrap();
        let bias = Tensor::zeros(&[1]);
        // Wrong weight shape.
        assert!(
            sparse_conv2d(&events, (4, 4), &Tensor::ones(&[1, 1, 2, 2]), &bias, &spec).is_err()
        );
        // Wrong input length.
        let short = SpikeVector::new(vec![], 9).unwrap();
        assert!(sparse_conv2d(&short, (4, 4), &Tensor::ones(&[1, 1, 3, 3]), &bias, &spec).is_err());
        // Kernel larger than input.
        let tiny = SpikeVector::new(vec![], 4).unwrap();
        assert!(sparse_conv2d(&tiny, (2, 2), &Tensor::ones(&[1, 1, 3, 3]), &bias, &spec).is_err());
    }

    #[test]
    fn unrolled_gather_matches_naive() {
        let row: Vec<f32> = (0..97).map(|i| (i as f32 * 0.37).sin()).collect();
        for nnz in [0usize, 1, 2, 3, 4, 5, 7, 8, 13, 31, 97] {
            let indices: Vec<u32> = (0..nnz as u32).map(|i| (i * 7) % 97).collect();
            let fast = gather_row(&row, &indices, 0.5);
            let naive = gather_row_naive(&row, &indices, 0.5);
            assert!(
                (fast - naive).abs() <= 1e-5 * (1.0 + naive.abs()),
                "nnz {nnz}: {fast} vs {naive}"
            );
        }
    }

    #[test]
    fn unrolled_scatter_conv_bitwise_matches_naive() {
        // The oc unroll reorders nothing per output cell, so the
        // results must be *exactly* equal, across channel counts that
        // exercise the 4-wide body and every remainder length.
        for out_channels in [1usize, 2, 3, 4, 5, 6, 7, 8, 11] {
            let spec = Conv2dSpec {
                in_channels: 2,
                out_channels,
                kernel: 3,
                stride: 1,
                padding: 1,
            };
            let (h, w) = (6, 5);
            let input_data: Vec<f32> = (0..2 * h * w)
                .map(|i| if i % 4 == 0 { 1.0 } else { 0.0 })
                .collect();
            let input = Tensor::from_vec(input_data, &[2, h, w]).unwrap();
            let events = SpikeVector::from_dense(&input).unwrap();
            let weight = Tensor::from_vec(
                (0..out_channels * 2 * 9)
                    .map(|i| (i as f32 * 0.53).cos())
                    .collect(),
                &[out_channels, 2, 3, 3],
            )
            .unwrap();
            let bias = Tensor::from_vec(
                (0..out_channels).map(|i| i as f32 * 0.1).collect(),
                &[out_channels],
            )
            .unwrap();
            let fast = sparse_conv2d(&events, (h, w), &weight, &bias, &spec).unwrap();
            let naive = sparse_conv2d_naive(&events, (h, w), &weight, &bias, &spec).unwrap();
            assert_eq!(
                fast.as_slice(),
                naive.as_slice(),
                "out_channels {out_channels}"
            );
        }
    }

    #[test]
    fn planed_matvec_bitwise_matches_f32_over_dequantized_weights() {
        use crate::plane::{QuantizedPlane, WeightPlane};
        let (m, k) = (6, 9);
        let w = Tensor::from_vec(
            (0..m * k).map(|i| (i as f32 * 0.29).sin() * 1.7).collect(),
            &[m, k],
        )
        .unwrap();
        let b = Tensor::from_vec((0..m).map(|i| i as f32 * 0.05 - 0.1).collect(), &[m]).unwrap();
        for plane in [WeightPlane::F16, WeightPlane::Int8] {
            let q = QuantizedPlane::quantize(w.as_slice(), plane)
                .unwrap()
                .unwrap();
            let dq = Tensor::from_vec(q.dequantize(), &[m, k]).unwrap();
            for every in [1usize, 2, 3, 9] {
                let x = binary_frame(k, every);
                let s = SpikeVector::from_dense(&x).unwrap();
                let planed = sparse_matvec_bias_planed(q.view(), (m, k), &s, &b).unwrap();
                let reference = sparse_matvec_bias(&dq, &s, &b).unwrap();
                for (a, r) in planed.as_slice().iter().zip(reference.as_slice()) {
                    assert_eq!(a.to_bits(), r.to_bits(), "{plane} every {every}");
                }
            }
        }
    }

    #[test]
    fn planed_matvec_shape_errors() {
        use crate::plane::{QuantizedPlane, WeightPlane};
        let q = QuantizedPlane::quantize(&[1.0; 12], WeightPlane::Int8)
            .unwrap()
            .unwrap();
        let b = Tensor::zeros(&[3]);
        let s4 = SpikeVector::new(vec![0], 4).unwrap();
        assert!(sparse_matvec_bias_planed(q.view(), (3, 4), &s4, &b).is_ok());
        // Plane length disagrees with the claimed shape.
        assert!(sparse_matvec_bias_planed(q.view(), (3, 5), &s4, &b).is_err());
        // Spike length disagrees with the column count.
        let s5 = SpikeVector::new(vec![0], 5).unwrap();
        assert!(sparse_matvec_bias_planed(q.view(), (3, 4), &s5, &b).is_err());
        // Bias length disagrees with the row count.
        assert!(sparse_matvec_bias_planed(q.view(), (3, 4), &s4, &Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn matvec_bias_exact_bitwise_matches_dense() {
        // The exact-order kernel must reproduce the dense
        // matvec-then-add-bias value per element, including at 100%
        // density where every column is active.
        let w =
            Tensor::from_vec((0..28).map(|i| (i as f32 * 0.31).sin()).collect(), &[4, 7]).unwrap();
        let b = Tensor::from_vec(vec![0.3, -0.7, 0.11, 1.9], &[4]).unwrap();
        for every in [1usize, 2, 3, 7] {
            let x = binary_frame(7, every);
            let s = SpikeVector::from_dense(&x).unwrap();
            let exact = sparse_matvec_bias_exact(&w, &s, &b).unwrap();
            let dense = linalg::matvec(&w, &x).unwrap().add(&b).unwrap();
            assert_eq!(exact.as_slice(), dense.as_slice(), "every {every}");
        }
    }

    #[test]
    fn matvec_bias_exact_shape_errors() {
        let w = Tensor::zeros(&[3, 4]);
        let s = SpikeVector::new(vec![0], 5).unwrap();
        assert!(sparse_matvec_bias_exact(&w, &s, &Tensor::zeros(&[3])).is_err());
        let s4 = SpikeVector::new(vec![0], 4).unwrap();
        assert!(sparse_matvec_bias_exact(&w, &s4, &Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn sparse_outer_acc_matches_dense_outer() {
        let g = Tensor::from_vec(vec![1.5, 0.0, -2.25], &[3]).unwrap();
        for every in [1usize, 2, 5] {
            let x = binary_frame(5, every);
            let s = SpikeVector::from_dense(&x).unwrap();
            let mut acc =
                Tensor::from_vec((0..15).map(|i| i as f32 * 0.1).collect(), &[3, 5]).unwrap();
            let reference = acc.add(&linalg::outer(&g, &x).unwrap()).unwrap();
            sparse_outer_acc(&mut acc, &g, &s).unwrap();
            assert_eq!(acc.as_slice(), reference.as_slice(), "every {every}");
        }
    }

    #[test]
    fn sparse_outer_acc_shape_errors() {
        let g = Tensor::zeros(&[3]);
        let s = SpikeVector::new(vec![0], 5).unwrap();
        let mut wrong_rows = Tensor::zeros(&[2, 5]);
        assert!(sparse_outer_acc(&mut wrong_rows, &g, &s).is_err());
        let mut wrong_cols = Tensor::zeros(&[3, 4]);
        assert!(sparse_outer_acc(&mut wrong_cols, &g, &s).is_err());
        let mut vec_acc = Tensor::zeros(&[15]);
        assert!(sparse_outer_acc(&mut vec_acc, &g, &s).is_err());
        let mut ok = Tensor::zeros(&[3, 5]);
        assert!(sparse_outer_acc(&mut ok, &Tensor::zeros(&[2, 2]), &s).is_err());
    }

    #[test]
    fn conv_backward_matches_dense_all_geometries() {
        use crate::conv::conv2d_backward;
        for &(stride, padding, every) in &[
            (1usize, 0usize, 3usize),
            (1, 1, 2),
            (2, 0, 4),
            (2, 1, 3),
            (1, 2, 1), // 100% density: every input position active
        ] {
            let spec = Conv2dSpec {
                in_channels: 2,
                out_channels: 5,
                kernel: 3,
                stride,
                padding,
            };
            let (h, w) = (6, 5);
            let input_data: Vec<f32> = (0..2 * h * w)
                .map(|i| if i % every == 0 { 1.0 } else { 0.0 })
                .collect();
            let input = Tensor::from_vec(input_data, &[2, h, w]).unwrap();
            let events = SpikeVector::from_dense(&input).unwrap();
            let weight = Tensor::from_vec(
                (0..5 * 2 * 9).map(|i| (i as f32 * 0.77).cos()).collect(),
                &[5, 2, 3, 3],
            )
            .unwrap();
            let (oh, ow) = spec.output_hw(h, w);
            let grad_out = Tensor::from_vec(
                (0..5 * oh * ow).map(|i| (i as f32 * 0.41).sin()).collect(),
                &[5, oh, ow],
            )
            .unwrap();
            let dense = conv2d_backward(&input, &weight, &grad_out, &spec).unwrap();
            let sparse =
                sparse_conv2d_backward(&events, (h, w), &weight, &grad_out, &spec).unwrap();
            assert_eq!(
                sparse.input.as_slice(),
                dense.input.as_slice(),
                "stride {stride} pad {padding} every {every}: input grad"
            );
            assert_eq!(
                sparse.bias.as_slice(),
                dense.bias.as_slice(),
                "stride {stride} pad {padding} every {every}: bias grad"
            );
            assert_eq!(
                sparse.weight.as_slice(),
                dense.weight.as_slice(),
                "stride {stride} pad {padding} every {every}: weight grad"
            );
        }
    }

    #[test]
    fn conv_backward_validation() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 3,
            stride: 1,
            padding: 0,
        };
        let events = SpikeVector::new(vec![], 16).unwrap();
        let w = Tensor::ones(&[1, 1, 3, 3]);
        // Wrong grad_out shape.
        assert!(
            sparse_conv2d_backward(&events, (4, 4), &w, &Tensor::zeros(&[1, 3, 3]), &spec).is_err()
        );
        assert!(
            sparse_conv2d_backward(&events, (4, 4), &w, &Tensor::zeros(&[1, 2, 2]), &spec).is_ok()
        );
        // Wrong weight shape.
        assert!(sparse_conv2d_backward(
            &events,
            (4, 4),
            &Tensor::ones(&[1, 1, 2, 2]),
            &Tensor::zeros(&[1, 2, 2]),
            &spec
        )
        .is_err());
    }

    #[test]
    fn avg_pool_matches_dense() {
        let data: Vec<f32> = (0..2 * 4 * 4)
            .map(|i| if i % 3 == 0 { 1.0 } else { 0.0 })
            .collect();
        let input = Tensor::from_vec(data, &[2, 4, 4]).unwrap();
        let events = SpikeVector::from_dense(&input).unwrap();
        let sparse = sparse_avg_pool2d(&events, &[2, 4, 4], 2).unwrap();
        let dense = avg_pool2d(&input, 2).unwrap();
        for (a, b) in sparse.as_slice().iter().zip(dense.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn max_pool_matches_dense() {
        let data: Vec<f32> = (0..4 * 4)
            .map(|i| if i == 5 || i == 10 { 1.0 } else { 0.0 })
            .collect();
        let input = Tensor::from_vec(data, &[1, 4, 4]).unwrap();
        let events = SpikeVector::from_dense(&input).unwrap();
        let sparse = sparse_max_pool2d(&events, &[1, 4, 4], 2).unwrap();
        let dense = max_pool2d(&input, 2).unwrap();
        assert_eq!(sparse.as_slice(), dense.output.as_slice());
    }

    #[test]
    fn pool_validation() {
        let events = SpikeVector::new(vec![], 16).unwrap();
        assert!(sparse_avg_pool2d(&events, &[1, 4, 4], 0).is_err());
        assert!(sparse_avg_pool2d(&events, &[1, 5, 4], 2).is_err());
        assert!(sparse_avg_pool2d(&events, &[4, 4], 2).is_err());
        assert!(sparse_max_pool2d(&events, &[1, 4, 5], 2).is_err());
        let wrong_len = SpikeVector::new(vec![], 8).unwrap();
        assert!(sparse_avg_pool2d(&wrong_len, &[1, 4, 4], 2).is_err());
    }
}
