use crate::{Result, Shape, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Owned, contiguous, row-major dense `f32` tensor.
///
/// `Tensor` is the workhorse value type of the workspace: images, spike
/// trains, membrane potentials, weights and gradients are all tensors.
/// All operations validate shapes and return [`TensorError`] on misuse.
///
/// # Example
///
/// ```
/// use axsnn_tensor::Tensor;
///
/// # fn main() -> axsnn_tensor::Result<()> {
/// let x = Tensor::from_vec(vec![1.0, -2.0, 3.0, -4.0], &[2, 2])?;
/// let relu = x.map(|v| v.max(0.0));
/// assert_eq!(relu.as_slice(), &[1.0, 0.0, 3.0, 0.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from flat row-major data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs
    /// from the shape volume.
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> axsnn_tensor::Result<()> {
    /// let t = axsnn_tensor::Tensor::from_vec(vec![0.0; 6], &[2, 3])?;
    /// assert_eq!(t.shape().dims(), &[2, 3]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.volume()],
            shape,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    ///
    /// # Example
    ///
    /// ```
    /// let t = axsnn_tensor::Tensor::full(&[3], 2.5);
    /// assert_eq!(t.as_slice(), &[2.5, 2.5, 2.5]);
    /// ```
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.volume()],
            shape,
        }
    }

    /// Returns the tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the flat row-major data as a slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Returns the flat row-major data as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] on invalid indices.
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> axsnn_tensor::Result<()> {
    /// let t = axsnn_tensor::Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// assert_eq!(t.at(&[1, 0])?, 3.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.flat_index(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] on invalid indices.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let flat = self.shape.flat_index(index)?;
        self.data[flat] = value;
        Ok(())
    }

    /// Returns a copy with a new shape sharing the same flat data order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the volumes differ.
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> axsnn_tensor::Result<()> {
    /// let t = axsnn_tensor::Tensor::zeros(&[2, 6]);
    /// let r = t.reshape(&[3, 4])?;
    /// assert_eq!(r.shape().dims(), &[3, 4]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        Tensor::from_vec(self.data.clone(), dims)
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Result<Tensor> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.dims().to_vec(),
                rhs: other.shape.dims().to_vec(),
                op: "zip",
            });
        }
        Ok(Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        })
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Adds a scalar to every element.
    pub fn shift(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// Clamps every element into `[lo, hi]`.
    ///
    /// # Example
    ///
    /// ```
    /// let t = axsnn_tensor::Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3]).unwrap();
    /// assert_eq!(t.clamp(0.0, 1.0).as_slice(), &[0.0, 0.5, 1.0]);
    /// ```
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Sums all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements; 0.0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element; `f32::NEG_INFINITY` for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element; `f32::INFINITY` for an empty tensor.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (first occurrence); `None` when empty.
    ///
    /// # Example
    ///
    /// ```
    /// let t = axsnn_tensor::Tensor::from_vec(vec![0.1, 0.9, 0.3], &[3]).unwrap();
    /// assert_eq!(t.argmax(), Some(1));
    /// ```
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// L∞ norm (largest absolute element); 0.0 for an empty tensor.
    pub fn linf_norm(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// L2 norm.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    /// Returns `true` when all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        const PREVIEW: usize = 8;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<f32> for Tensor {
    /// Collects an iterator into a rank-1 tensor.
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        let data: Vec<f32> = iter.into_iter().collect();
        let n = data.len();
        Tensor {
            data,
            shape: Shape::new(&[n]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_volume() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full(&[2], -3.0).sum(), -6.0);
    }

    #[test]
    fn indexing_roundtrip() {
        let mut t = Tensor::zeros(&[3, 4]);
        t.set(&[2, 3], 7.0).unwrap();
        assert_eq!(t.at(&[2, 3]).unwrap(), 7.0);
        assert_eq!(t.at(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn add_sub_mul() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[3.0, 10.0]);
    }

    #[test]
    fn mismatched_shapes_rejected() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 2]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]).unwrap();
        let r = t.reshape(&[2, 6]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[5, 5]).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        assert_eq!(t.sum(), 2.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.linf_norm(), 3.0);
        assert!((t.l2_norm() - 14.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_first_occurrence() {
        let t = Tensor::from_vec(vec![5.0, 5.0, 1.0], &[3]).unwrap();
        assert_eq!(t.argmax(), Some(0));
        let empty: Tensor = Vec::<f32>::new().into_iter().collect();
        assert_eq!(empty.argmax(), None);
    }

    #[test]
    fn clamp_bounds() {
        let t = Tensor::from_vec(vec![-5.0, 0.3, 9.0], &[3]).unwrap();
        let c = t.clamp(0.0, 1.0);
        assert_eq!(c.as_slice(), &[0.0, 0.3, 1.0]);
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros(&[100]);
        let s = t.to_string();
        assert!(s.contains('…'));
        assert!(s.starts_with("Tensor(100)"));
    }

    #[test]
    fn from_iterator_rank1() {
        let t: Tensor = (0..5).map(|i| i as f32).collect();
        assert_eq!(t.shape().dims(), &[5]);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut t = Tensor::zeros(&[2]);
        assert!(t.is_finite());
        t.as_mut_slice()[0] = f32::NAN;
        assert!(!t.is_finite());
    }
}
