//! Property-based tests for the tensor substrate.

use axsnn_tensor::conv::{avg_pool2d, avg_pool2d_backward, conv2d, conv2d_backward, Conv2dSpec};
use axsnn_tensor::{linalg, ops, Tensor};
use proptest::prelude::*;

fn tensor_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    /// Transposition is an involution on arbitrary matrices.
    #[test]
    fn transpose_involution(data in tensor_strategy(12)) {
        let a = Tensor::from_vec(data, &[3, 4]).unwrap();
        let tt = linalg::transpose(&linalg::transpose(&a).unwrap()).unwrap();
        prop_assert_eq!(a, tt);
    }

    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn matmul_transpose_identity(a in tensor_strategy(6), b in tensor_strategy(6)) {
        let a = Tensor::from_vec(a, &[2, 3]).unwrap();
        let b = Tensor::from_vec(b, &[3, 2]).unwrap();
        let left = linalg::transpose(&linalg::matmul(&a, &b).unwrap()).unwrap();
        let right = linalg::matmul(
            &linalg::transpose(&b).unwrap(),
            &linalg::transpose(&a).unwrap(),
        ).unwrap();
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((l - r).abs() <= 1e-3 * (1.0 + l.abs()), "{l} vs {r}");
        }
    }

    /// Matmul distributes over addition: A·(B+C) = A·B + A·C.
    #[test]
    fn matmul_distributes(
        a in tensor_strategy(4),
        b in tensor_strategy(4),
        c in tensor_strategy(4),
    ) {
        let a = Tensor::from_vec(a, &[2, 2]).unwrap();
        let b = Tensor::from_vec(b, &[2, 2]).unwrap();
        let c = Tensor::from_vec(c, &[2, 2]).unwrap();
        let lhs = linalg::matmul(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = linalg::matmul(&a, &b).unwrap().add(&linalg::matmul(&a, &c).unwrap()).unwrap();
        for (l, r) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((l - r).abs() <= 1e-3 * (1.0 + l.abs()));
        }
    }

    /// Convolution is linear in the input: conv(x+y) = conv(x) + conv(y)
    /// when the bias is zero.
    #[test]
    fn conv_is_linear(x in tensor_strategy(2 * 16), y in tensor_strategy(2 * 16), w in tensor_strategy(3 * 2 * 9)) {
        let spec = Conv2dSpec { in_channels: 2, out_channels: 3, kernel: 3, stride: 1, padding: 1 };
        let x = Tensor::from_vec(x, &[2, 4, 4]).unwrap();
        let y = Tensor::from_vec(y, &[2, 4, 4]).unwrap();
        let w = Tensor::from_vec(w, &[3, 2, 3, 3]).unwrap();
        let b = Tensor::zeros(&[3]);
        let sum = conv2d(&x.add(&y).unwrap(), &w, &b, &spec).unwrap();
        let parts = conv2d(&x, &w, &b, &spec).unwrap()
            .add(&conv2d(&y, &w, &b, &spec).unwrap()).unwrap();
        for (l, r) in sum.as_slice().iter().zip(parts.as_slice()) {
            prop_assert!((l - r).abs() <= 1e-2 * (1.0 + l.abs()));
        }
    }

    /// Average pooling preserves the total sum (window divides input).
    #[test]
    fn avg_pool_preserves_mean(x in tensor_strategy(16)) {
        let x = Tensor::from_vec(x, &[1, 4, 4]).unwrap();
        let p = avg_pool2d(&x, 2).unwrap();
        prop_assert!((p.sum() * 4.0 - x.sum()).abs() < 1e-3);
    }

    /// Pool backward is the adjoint of pool forward:
    /// ⟨pool(x), g⟩ = ⟨x, pool_backward(g)⟩.
    #[test]
    fn avg_pool_adjoint(x in tensor_strategy(16), g in tensor_strategy(4)) {
        let x = Tensor::from_vec(x, &[1, 4, 4]).unwrap();
        let g = Tensor::from_vec(g, &[1, 2, 2]).unwrap();
        let fwd = avg_pool2d(&x, 2).unwrap();
        let bwd = avg_pool2d_backward(&g, &[1, 4, 4], 2).unwrap();
        let lhs: f32 = fwd.as_slice().iter().zip(g.as_slice()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.as_slice().iter().zip(bwd.as_slice()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() <= 1e-3 * (1.0 + lhs.abs()));
    }

    /// Conv backward input-grad is the adjoint of conv forward (zero
    /// bias): ⟨conv(x), g⟩ = ⟨x, conv_backwardᵢₙ(g)⟩.
    #[test]
    fn conv_adjoint(x in tensor_strategy(16), w in tensor_strategy(9), g in tensor_strategy(16)) {
        let spec = Conv2dSpec { in_channels: 1, out_channels: 1, kernel: 3, stride: 1, padding: 1 };
        let x = Tensor::from_vec(x, &[1, 4, 4]).unwrap();
        let w = Tensor::from_vec(w, &[1, 1, 3, 3]).unwrap();
        let g = Tensor::from_vec(g, &[1, 4, 4]).unwrap();
        let b = Tensor::zeros(&[1]);
        let fwd = conv2d(&x, &w, &b, &spec).unwrap();
        let grads = conv2d_backward(&x, &w, &g, &spec).unwrap();
        let lhs: f32 = fwd.as_slice().iter().zip(g.as_slice()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.as_slice().iter().zip(grads.input.as_slice()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() <= 2e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// Softmax output is a probability distribution and order-preserving.
    #[test]
    fn softmax_is_distribution(data in tensor_strategy(8)) {
        let t = Tensor::from_vec(data.clone(), &[8]).unwrap();
        let p = ops::softmax(&t).unwrap();
        prop_assert!(p.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        prop_assert!((p.sum() - 1.0).abs() < 1e-4);
        prop_assert_eq!(t.argmax(), p.argmax());
    }

    /// sign(x)·|x| reconstructs x.
    #[test]
    fn sign_magnitude_decomposition(data in tensor_strategy(10)) {
        let t = Tensor::from_vec(data, &[10]).unwrap();
        let s = ops::sign(&t);
        let m = t.map(f32::abs);
        let back = s.mul(&m).unwrap();
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// Clamp output stays inside the bounds and is idempotent.
    #[test]
    fn clamp_idempotent(data in tensor_strategy(10)) {
        let t = Tensor::from_vec(data, &[10]).unwrap();
        let c = t.clamp(0.0, 1.0);
        prop_assert!(c.min() >= 0.0 && c.max() <= 1.0);
        prop_assert_eq!(c.clamp(0.0, 1.0), c);
    }

    /// Reshape round-trips preserve data exactly.
    #[test]
    fn reshape_roundtrip(data in tensor_strategy(24)) {
        let t = Tensor::from_vec(data, &[2, 3, 4]).unwrap();
        let r = t.reshape(&[6, 4]).unwrap().reshape(&[2, 3, 4]).unwrap();
        prop_assert_eq!(t, r);
    }

    /// Cross-entropy loss is non-negative and zero only for a perfectly
    /// confident correct prediction.
    #[test]
    fn cross_entropy_non_negative(data in tensor_strategy(5), label in 0usize..5) {
        let t = Tensor::from_vec(data, &[5]).unwrap();
        let (loss, grad) = ops::cross_entropy_with_grad(&t, label).unwrap();
        prop_assert!(loss >= 0.0);
        prop_assert!(grad.sum().abs() < 1e-4, "softmax-CE grad sums to zero");
    }
}
