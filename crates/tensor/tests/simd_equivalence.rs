//! Property tests pinning the runtime-dispatched kernel layer (PR 10)
//! to the portable scalar truth path **bit-for-bit** — not within a
//! tolerance. The SIMD lanes map to distinct output rows and replicate
//! the scalar 4-accumulator reduction shape exactly, so for every
//! density (0–100%), batch size (1–32), weight plane and remainder lane
//! count (`m % 8 ≠ 0`, `m % 16 ≠ 0`) the dispatched result must equal
//! the scalar twin's output to the bit.
//!
//! Run with `AXSNN_NO_SIMD=1` both sides take the scalar path and the
//! suite degenerates to reflexivity — CI runs it both ways.

use axsnn_tensor::batched::{
    sparse_conv2d_sorted, sparse_matmul_bias, sparse_matmul_bias_planed,
    sparse_matmul_bias_planed_scalar, sparse_matmul_bias_scalar, SpikeMatrix,
};
use axsnn_tensor::conv::Conv2dSpec;
use axsnn_tensor::plane::{QuantizedPlane, WeightPlane};
use axsnn_tensor::sparse::{
    sparse_conv2d, sparse_matvec_bias, sparse_matvec_bias_scalar, SpikeVector,
};
use axsnn_tensor::{init, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A binary frame of `len` elements: cell `i` spikes iff
/// `hash(i, salt)` lands under `density`. Covers 0% and 100% exactly.
fn binary_frame(len: usize, density: f32, salt: u64) -> SpikeVector {
    let data: Vec<f32> = (0..len)
        .map(|i| {
            let mut h = (i as u64)
                .wrapping_add(salt)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15);
            h ^= h >> 29;
            h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            let unit = (h >> 40) as f32 / (1u64 << 24) as f32;
            if unit < density {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    SpikeVector::from_dense(&Tensor::from_vec(data, &[len]).unwrap()).unwrap()
}

/// Densities to exercise: the paper-realistic regime (≤10–20%), the
/// dispatch threshold neighbourhood, and both degenerate extremes.
fn density_strategy() -> impl Strategy<Value = f32> {
    (0u8..6).prop_map(|k| match k {
        0 => 0.0,
        1 => 0.01,
        2 => 0.1,
        3 => 0.2,
        4 => 0.5,
        _ => 1.0,
    })
}

/// Output-row counts straddling every tile boundary: below one 8-lane
/// tile, 8/16 exactly, and remainders with `m % 8 ≠ 0` and
/// `m % 16 ≠ 0` so the 16-row, 8-row, 4-row and single-row paths all
/// run.
fn rows_strategy() -> impl Strategy<Value = usize> {
    (0u8..7).prop_map(|k| [1, 3, 8, 13, 16, 21, 37][k as usize])
}

fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape diverged");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} diverged ({x} vs {y})"
        );
    }
}

proptest! {
    /// Dispatched sparse matvec is bit-identical to the scalar twin
    /// across densities and remainder lane counts.
    #[test]
    fn matvec_bit_identity(
        m in rows_strategy(),
        k in 1usize..48,
        density in density_strategy(),
        salt in 0u64..1024,
    ) {
        let mut rng = StdRng::seed_from_u64(salt);
        let weight = init::uniform(&mut rng, &[m, k], 0.5);
        let bias = init::uniform(&mut rng, &[m], 0.5);
        let x = binary_frame(k, density, salt);
        let fast = sparse_matvec_bias(&weight, &x, &bias).unwrap();
        let scalar = sparse_matvec_bias_scalar(&weight, &x, &bias).unwrap();
        assert_bits_eq(&fast, &scalar, "matvec");
    }

    /// Dispatched batched GEMM (panel and gather variants — both sides
    /// of the `nnz >= k` packing threshold) is bit-identical to the
    /// scalar tile path for batches 1–32.
    #[test]
    fn matmul_bit_identity(
        m in rows_strategy(),
        k in 1usize..48,
        batch in 1usize..33,
        density in density_strategy(),
        salt in 0u64..1024,
    ) {
        let mut rng = StdRng::seed_from_u64(salt ^ 0xa5);
        let weight = init::uniform(&mut rng, &[m, k], 0.5);
        let bias = init::uniform(&mut rng, &[m], 0.5);
        let rows: Vec<SpikeVector> = (0..batch)
            .map(|b| binary_frame(k, density, salt.wrapping_add(b as u64 * 977)))
            .collect();
        let x = SpikeMatrix::from_rows(&rows).unwrap();
        let fast = sparse_matmul_bias(&weight, &x, &bias).unwrap();
        let scalar = sparse_matmul_bias_scalar(&weight, &x, &bias).unwrap();
        assert_bits_eq(&fast, &scalar, "matmul");
    }

    /// Planed GEMM with blocked dequantization (and its SIMD panel
    /// variant) is bit-identical to the per-element lane decode for
    /// every weight plane. The f32 plane quantizes to a no-op, so it is
    /// covered through the f32 dispatch pair on the dequantized image —
    /// all three [`WeightPlane`]s run through one test.
    #[test]
    fn planed_matmul_bit_identity(
        m in rows_strategy(),
        k in 1usize..48,
        batch in 1usize..33,
        density in density_strategy(),
        plane_pick in 0u8..3,
        salt in 0u64..1024,
    ) {
        let plane = match plane_pick {
            0 => WeightPlane::F32,
            1 => WeightPlane::F16,
            _ => WeightPlane::Int8,
        };
        let mut rng = StdRng::seed_from_u64(salt ^ 0x5a);
        let weight = init::uniform(&mut rng, &[m, k], 0.5);
        let bias = init::uniform(&mut rng, &[m], 0.5);
        let rows: Vec<SpikeVector> = (0..batch)
            .map(|b| binary_frame(k, density, salt.wrapping_add(b as u64 * 1493)))
            .collect();
        let x = SpikeMatrix::from_rows(&rows).unwrap();
        match QuantizedPlane::quantize(weight.as_slice(), plane).unwrap() {
            Some(quant) => {
                let fast =
                    sparse_matmul_bias_planed(quant.view(), (m, k), &x, &bias).unwrap();
                let scalar =
                    sparse_matmul_bias_planed_scalar(quant.view(), (m, k), &x, &bias)
                        .unwrap();
                assert_bits_eq(&fast, &scalar, "planed matmul");
            }
            None => {
                // F32 plane: the planed entry points don't apply; pin
                // the f32 dispatch pair on the same inputs instead.
                let fast = sparse_matmul_bias(&weight, &x, &bias).unwrap();
                let scalar = sparse_matmul_bias_scalar(&weight, &x, &bias).unwrap();
                assert_bits_eq(&fast, &scalar, "f32-plane matmul");
            }
        }
    }

    /// B=1 event-sorted conv is bit-identical to the per-event scatter
    /// across geometries and densities (same per-output accumulation
    /// order by construction).
    #[test]
    fn sorted_conv_bit_identity(
        out_channels in 1usize..10,
        in_channels in 1usize..5,
        kernel in 1usize..6,
        stride in 1usize..3,
        padding in 0usize..3,
        hw in 4usize..12,
        density in density_strategy(),
        salt in 0u64..1024,
    ) {
        // Clamp so the padded frame always admits at least one window.
        let kernel = kernel.min(hw + 2 * padding);
        let spec = Conv2dSpec { in_channels, out_channels, kernel, stride, padding };
        let mut rng = StdRng::seed_from_u64(salt ^ 0xc3);
        let weight = init::uniform(
            &mut rng,
            &[out_channels, in_channels, kernel, kernel],
            0.5,
        );
        let bias = init::uniform(&mut rng, &[out_channels], 0.5);
        let x = binary_frame(in_channels * hw * hw, density, salt);
        let sorted = sparse_conv2d_sorted(&x, (hw, hw), &weight, &bias, &spec).unwrap();
        let scatter = sparse_conv2d(&x, (hw, hw), &weight, &bias, &spec).unwrap();
        assert_bits_eq(&sorted, &scatter, "sorted conv");
    }
}
