//! Property tests pinning the event-driven sparse kernels to their dense
//! counterparts: for every random shape, stride, padding and spike
//! density — including the 0% and 100% extremes — the sparse forward
//! path must match the dense path within 1e-5 per element (the sparse
//! gather sums 4-wide, so results differ from the dense sequential sum
//! only by f32 reassociation).

use axsnn_tensor::batched::{sparse_matmul_bias, SpikeMatrix};
use axsnn_tensor::conv::{avg_pool2d, conv2d, max_pool2d, Conv2dSpec};
use axsnn_tensor::sparse::{
    sparse_avg_pool2d, sparse_conv2d, sparse_matvec_bias, sparse_max_pool2d, SpikeVector,
};
use axsnn_tensor::{linalg, Tensor};
use proptest::prelude::*;

/// A binary frame of `len` elements: cell `i` spikes iff
/// `hash(i, salt)` lands under `density`. Covers 0% and 100% exactly.
fn binary_frame(len: usize, density: f32, salt: u64) -> Tensor {
    let data: Vec<f32> = (0..len)
        .map(|i| {
            let mut h = (i as u64)
                .wrapping_add(salt)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15);
            h ^= h >> 29;
            h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            let unit = (h >> 40) as f32 / (1u64 << 24) as f32;
            if unit < density {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    Tensor::from_vec(data, &[len]).unwrap()
}

fn weights(len: usize, salt: u64) -> Vec<f32> {
    (0..len)
        .map(|i| ((i as f32 + salt as f32) * 0.7311).sin() * 2.0)
        .collect()
}

/// Densities to exercise: the paper-realistic regime (≤10–20%), the
/// threshold boundary, and both degenerate extremes.
fn density_strategy() -> impl Strategy<Value = f32> {
    (0u8..6).prop_map(|k| match k {
        0 => 0.0,
        1 => 0.01,
        2 => 0.1,
        3 => 0.2,
        4 => 0.5,
        _ => 1.0,
    })
}

proptest! {
    /// Sparse matvec+bias equals dense matvec+bias on random layer
    /// shapes and densities.
    #[test]
    fn matvec_equivalence(
        rows in 1usize..40,
        cols in 1usize..60,
        density in density_strategy(),
        salt in 0u64..1000,
    ) {
        let w = Tensor::from_vec(weights(rows * cols, salt), &[rows, cols]).unwrap();
        let b = Tensor::from_vec(weights(rows, salt ^ 0xabcd), &[rows]).unwrap();
        let x = binary_frame(cols, density, salt);
        let events = SpikeVector::from_dense(&x).expect("frame is binary");
        let sparse = sparse_matvec_bias(&w, &events, &b).unwrap();
        let dense = linalg::matvec(&w, &x).unwrap().add(&b).unwrap();
        for (s, d) in sparse.as_slice().iter().zip(dense.as_slice()) {
            prop_assert!((s - d).abs() <= 1e-5 * (1.0 + d.abs()), "{s} vs {d}");
        }
    }

    /// Scatter conv equals direct dense conv across strides, paddings,
    /// kernel sizes, channel counts and densities.
    #[test]
    fn conv_equivalence(
        cin in 1usize..4,
        cout in 1usize..5,
        kernel in 1usize..5,
        stride in 1usize..3,
        padding in 0usize..3,
        h in 4usize..12,
        w in 4usize..12,
        density in density_strategy(),
        salt in 0u64..1000,
    ) {
        // Clamp the geometry so the kernel always fits the padded input
        // (the reject case is validated separately below).
        let kernel = kernel.min(h + 2 * padding).min(w + 2 * padding);
        let spec = Conv2dSpec { in_channels: cin, out_channels: cout, kernel, stride, padding };
        let input = binary_frame(cin * h * w, density, salt)
            .reshape(&[cin, h, w])
            .unwrap();
        let weight = Tensor::from_vec(
            weights(cout * cin * kernel * kernel, salt),
            &[cout, cin, kernel, kernel],
        )
        .unwrap();
        let bias = Tensor::from_vec(weights(cout, salt ^ 0x77), &[cout]).unwrap();
        let dense = conv2d(&input, &weight, &bias, &spec).unwrap();
        let events = SpikeVector::from_dense(&input).expect("frame is binary");
        let sparse = sparse_conv2d(&events, (h, w), &weight, &bias, &spec).unwrap();
        prop_assert_eq!(sparse.shape().dims(), dense.shape().dims());
        for (s, d) in sparse.as_slice().iter().zip(dense.as_slice()) {
            prop_assert!(
                (s - d).abs() <= 1e-5 * (1.0 + d.abs()),
                "stride {} pad {}: {} vs {}", stride, padding, s, d
            );
        }
    }

    /// Both paths reject a kernel that does not fit the padded input.
    #[test]
    fn conv_rejects_oversized_kernel_consistently(
        h in 1usize..3,
        w in 1usize..3,
        kernel in 4usize..6,
    ) {
        let spec = Conv2dSpec { in_channels: 1, out_channels: 1, kernel, stride: 1, padding: 0 };
        let input = Tensor::zeros(&[1, h, w]);
        let weight = Tensor::zeros(&[1, 1, kernel, kernel]);
        let bias = Tensor::zeros(&[1]);
        let events = SpikeVector::from_dense(&input).unwrap();
        prop_assert!(conv2d(&input, &weight, &bias, &spec).is_err());
        prop_assert!(sparse_conv2d(&events, (h, w), &weight, &bias, &spec).is_err());
    }

    /// Sparse pooling equals dense pooling on binary frames.
    #[test]
    fn pooling_equivalence(
        c in 1usize..4,
        oh in 1usize..6,
        ow in 1usize..6,
        k in 1usize..4,
        density in density_strategy(),
        salt in 0u64..1000,
    ) {
        let (h, w) = (oh * k, ow * k);
        let input = binary_frame(c * h * w, density, salt)
            .reshape(&[c, h, w])
            .unwrap();
        let events = SpikeVector::from_dense(&input).expect("frame is binary");
        let dense_avg = avg_pool2d(&input, k).unwrap();
        let sparse_avg = sparse_avg_pool2d(&events, &[c, h, w], k).unwrap();
        for (s, d) in sparse_avg.as_slice().iter().zip(dense_avg.as_slice()) {
            prop_assert!((s - d).abs() <= 1e-6, "{s} vs {d}");
        }
        let dense_max = max_pool2d(&input, k).unwrap();
        let sparse_max = sparse_max_pool2d(&events, &[c, h, w], k).unwrap();
        prop_assert_eq!(sparse_max.as_slice(), dense_max.output.as_slice());
    }

    /// Every row of the batched spike-plane GEMM is bit-identical to
    /// the per-sample sparse matvec it fuses — the invariant the
    /// batched forward engine's bit-for-bit guarantee rests on.
    #[test]
    fn batched_matmul_rows_bitwise_equal_matvec(
        batch in 1usize..16,
        rows in 1usize..24,
        cols in 1usize..48,
        density in density_strategy(),
        salt in 0u64..1000,
    ) {
        let w = Tensor::from_vec(weights(rows * cols, salt), &[rows, cols]).unwrap();
        let b = Tensor::from_vec(weights(rows, salt ^ 0xabcd), &[rows]).unwrap();
        let frames: Vec<SpikeVector> = (0..batch)
            .map(|r| {
                let x = binary_frame(cols, density, salt.wrapping_add(r as u64));
                SpikeVector::from_dense(&x).expect("frame is binary")
            })
            .collect();
        let fused = sparse_matmul_bias(&w, &SpikeMatrix::from_rows(&frames).unwrap(), &b).unwrap();
        prop_assert_eq!(fused.shape().dims(), &[batch, rows]);
        for (r, events) in frames.iter().enumerate() {
            let per_sample = sparse_matvec_bias(&w, events, &b).unwrap();
            prop_assert_eq!(
                &fused.as_slice()[r * rows..(r + 1) * rows],
                per_sample.as_slice()
            );
        }
    }

    /// Round trip dense → events → dense is the identity on binary
    /// frames, and the density gate agrees with the measured density.
    #[test]
    fn conversion_roundtrip_and_gate(
        len in 1usize..400,
        density in density_strategy(),
        salt in 0u64..1000,
        threshold in 0.0f32..1.0,
    ) {
        let frame = binary_frame(len, density, salt);
        let events = SpikeVector::from_dense(&frame).expect("binary");
        prop_assert_eq!(events.to_dense(&[len]).unwrap(), frame.clone());
        let gated = SpikeVector::from_dense_if_sparse(&frame, threshold);
        let admitted = events.nnz() as f32 <= (threshold as f64 * len as f64).floor() as f32
            && threshold > 0.0;
        prop_assert_eq!(gated.is_some(), admitted);
    }
}
