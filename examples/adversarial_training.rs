//! Stacked defenses: adversarial training of the accurate model, then
//! conversion + precision scaling — hardening beyond the paper's two
//! defenses (its future-work direction).
//!
//! Run with:
//! ```text
//! cargo run --release -p axsnn --example adversarial_training
//! ```

use axsnn::attacks::gradient::{AnnGradientSource, AttackBudget, Pgd};
use axsnn::core::convert::ann_to_snn;
use axsnn::core::encoding::Encoder;
use axsnn::core::network::SnnConfig;
use axsnn::core::precision::{apply_precision, PrecisionScale};
use axsnn::datasets::mnist::MnistConfig;
use axsnn::defense::adv_train::{adversarial_train_ann, AdvTrainConfig};
use axsnn::defense::metrics::evaluate_image_attack;
use axsnn::defense::scenario::{MnistScenario, MnistScenarioConfig};
use axsnn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(17);

    println!("1. baseline scenario (clean-trained accurate model)…");
    let mut cfg = MnistScenarioConfig::default();
    cfg.mnist = MnistConfig {
        size: 16,
        train_per_class: 30,
        test_per_class: 6,
        ..cfg.mnist
    };
    let scenario = MnistScenario::prepare(cfg)?;
    let snn_cfg = SnnConfig {
        threshold: 1.0,
        time_steps: 32,
        leak: 0.9,
    };
    let calibration: Vec<Tensor> = scenario
        .dataset()
        .train
        .iter()
        .take(24)
        .map(|(x, _)| x.clone())
        .collect();

    println!("2. adversarially retraining a hardened accurate model (FGSM mixing)…");
    let mut hardened_ann = scenario.ann().clone();
    adversarial_train_ann(
        &mut hardened_ann,
        &scenario.dataset().train,
        &AdvTrainConfig {
            train: cfg.train,
            epsilon: 0.08,
            adversarial_fraction: 0.5,
        },
        &mut rng,
    )?;

    println!("3. attacking three SNN variants with PGD (effective ε = 0.08)…");
    let pgd = Pgd::new(AttackBudget::for_epsilon(0.08));
    let report = |name: &str,
                  mut net: axsnn::core::network::SpikingNetwork,
                  rng: &mut StdRng|
     -> Result<(), Box<dyn std::error::Error>> {
        let mut source = AnnGradientSource::new(scenario.adversary());
        let out = evaluate_image_attack(
            &mut net,
            &mut source,
            &pgd,
            &scenario.dataset().test,
            Encoder::DirectCurrent,
            rng,
        )?;
        println!(
            "   {name:<34} clean {:>5.1}%  under PGD {:>5.1}%",
            out.clean_accuracy, out.adversarial_accuracy
        );
        Ok(())
    };

    report("clean-trained AccSNN", scenario.acc_snn(snn_cfg)?, &mut rng)?;
    let hardened_snn = ann_to_snn(&hardened_ann, snn_cfg, &calibration)?;
    report("adversarially trained AccSNN", hardened_snn, &mut rng)?;
    let mut stacked = ann_to_snn(&hardened_ann, snn_cfg, &calibration)?;
    apply_precision(&mut stacked, PrecisionScale::Int8)?;
    report("hardened + INT8 precision scaling", stacked, &mut rng)?;

    println!("\nExpected: the hardened rows keep more accuracy under attack than");
    println!("the clean-trained baseline; INT8 stacking should not hurt.");
    Ok(())
}
