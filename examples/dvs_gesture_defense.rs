//! DVS gesture defense (small-scale Fig. 7b / Table II): Sparse and Frame
//! attacks on the Acc/Ax SNN, undefended vs. AQF-defended.
//!
//! Run with:
//! ```text
//! cargo run --release -p axsnn --example dvs_gesture_defense
//! ```

use axsnn::attacks::neuromorphic::{
    FrameAttack, FrameAttackConfig, SparseAttack, SparseAttackConfig,
};
use axsnn::core::approx::ApproximationLevel;
use axsnn::core::network::SnnConfig;
use axsnn::datasets::dvs::DvsGestureConfig;
use axsnn::defense::metrics::{evaluate_event_attack, EventAttackKind};
use axsnn::defense::scenario::{DvsScenario, DvsScenarioConfig};
use axsnn::neuromorphic::aqf::AqfConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(11);

    println!("preparing DVS gesture scenario…");
    let cfg = DvsScenarioConfig {
        dvs: DvsGestureConfig {
            train_per_class: 8,
            test_per_class: 3,
            ..DvsGestureConfig::default()
        },
        ..DvsScenarioConfig::default()
    };
    let scenario = DvsScenario::prepare(cfg)?;

    // Paper setting for neuromorphic experiments: V_th = 1.0, T = 80
    // (T scaled to 32 for the 32×32 synthetic sensor).
    let snn_cfg = SnnConfig {
        threshold: 1.0,
        time_steps: 32,
        leak: 0.9,
    };
    let level = ApproximationLevel::new(0.1).expect("valid level");

    let attacks = [
        EventAttackKind::None,
        EventAttackKind::Sparse(SparseAttack::new(SparseAttackConfig::default())),
        EventAttackKind::Frame(FrameAttack::new(FrameAttackConfig {
            thickness: 2,
            ..FrameAttackConfig::default()
        })),
    ];
    let aqf = AqfConfig {
        quantization_step: 0.015,
        ..AqfConfig::default()
    };

    println!("\n=== accuracy [%] on synthetic DVS gestures ===");
    println!(
        "{:<10} {:>10} {:>10} {:>14} {:>14}",
        "attack", "AccSNN", "AxSNN", "AccSNN+AQF", "AxSNN+AQF"
    );
    for attack in attacks {
        let mut row = vec![];
        for (approx, use_aqf) in [(false, false), (true, false), (false, true), (true, true)] {
            let mut victim = if approx {
                scenario.ax_snn(snn_cfg, level)?
            } else {
                scenario.acc_snn(snn_cfg)?
            };
            let mut surrogate = scenario.acc_snn(SnnConfig {
                threshold: 0.75,
                time_steps: 24,
                leak: 0.9,
            })?;
            let outcome = evaluate_event_attack(
                &mut victim,
                &mut surrogate,
                attack,
                &scenario.dataset().test,
                if use_aqf { Some(&aqf) } else { None },
                &mut rng,
            )?;
            row.push(outcome.adversarial_accuracy);
        }
        println!(
            "{:<10} {:>10.1} {:>10.1} {:>14.1} {:>14.1}",
            attack.name(),
            row[0],
            row[1],
            row[2],
            row[3]
        );
    }
    println!("\nExpected shape (paper Fig. 7b + Table II): Sparse/Frame collapse");
    println!("the undefended columns; the AQF columns stay near the clean row.");
    Ok(())
}
