//! DVS gesture defense (small-scale Fig. 7b / Table II): Sparse and Frame
//! attacks on the Acc/Ax SNN, undefended vs. AQF-defended.
//!
//! Run with:
//! ```text
//! cargo run --release -p axsnn --example dvs_gesture_defense
//! ```
//!
//! Set `AXSNN_STREAM=1` to route every evaluation through the
//! streaming event pipeline (PR 9) instead of materializing
//! whole-sample frames: events replay through a
//! [`StreamSession`], AQF — when enabled — runs as the causal
//! in-stream filter, and the run ends with a per-window latency
//! profile of one test sample. Without AQF the streamed accuracy
//! columns are bit-identical to the offline default.

use axsnn::attacks::neuromorphic::{
    FrameAttack, FrameAttackConfig, SparseAttack, SparseAttackConfig,
};
use axsnn::core::approx::ApproximationLevel;
use axsnn::core::network::SnnConfig;
use axsnn::datasets::dvs::DvsGestureConfig;
use axsnn::defense::metrics::{evaluate_event_attack_via, EventAttackKind, EventPipeline};
use axsnn::defense::scenario::{DvsScenario, DvsScenarioConfig};
use axsnn::neuromorphic::aqf::AqfConfig;
use axsnn::neuromorphic::event::EventStream;
use axsnn::neuromorphic::frames::Accumulation;
use axsnn::neuromorphic::stream::{StreamConfig, StreamSession, WindowSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Replays one test sample through a live [`StreamSession`] and prints
/// when each window's incremental membrane update completed, relative
/// to the arrival of the sample's first event — the anytime-latency
/// story a frame pipeline cannot tell.
fn profile_stream_latency<R: Rng>(
    net: &mut axsnn::core::network::SpikingNetwork,
    sample: &EventStream,
    time_steps: usize,
    rng: &mut R,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut ordered = sample.clone();
    ordered.sort_by_time();
    let cfg = StreamConfig {
        schedule: WindowSchedule::Uniform { time_steps },
        mode: Accumulation::Binary,
        aqf: None,
    };
    let mut session = StreamSession::begin(net, sample.width(), sample.height(), cfg)?;
    let start = Instant::now();
    let mut closes: Vec<(usize, f64)> = Vec::new();
    for e in ordered.events() {
        if session.push(*e, rng)? > 0 {
            closes.push((
                session.windows_stepped(),
                start.elapsed().as_secs_f64() * 1e6,
            ));
        }
    }
    let outcome = session.finish(rng)?;
    closes.push((outcome.windows, start.elapsed().as_secs_f64() * 1e6));

    println!("\n=== streaming per-window latency (one test sample) ===");
    println!(
        "{} events over {} windows; elapsed is wall time since the first event",
        outcome.events_in, outcome.windows
    );
    println!("{:>8} {:>14} {:>14}", "window", "elapsed [µs]", "step [µs]");
    let mut prev = 0.0;
    for (window, elapsed) in &closes {
        println!("{:>8} {:>14.1} {:>14.1}", window, elapsed, elapsed - prev);
        prev = *elapsed;
    }
    println!(
        "prediction {} ready {:.1} µs after the first event",
        outcome.prediction,
        closes.last().map_or(0.0, |&(_, t)| t)
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(11);
    let streaming = std::env::var("AXSNN_STREAM").is_ok_and(|v| v == "1");
    let pipeline = if streaming {
        EventPipeline::Streaming
    } else {
        EventPipeline::OfflineFrames
    };

    println!("preparing DVS gesture scenario…");
    let cfg = DvsScenarioConfig {
        dvs: DvsGestureConfig {
            train_per_class: 8,
            test_per_class: 3,
            ..DvsGestureConfig::default()
        },
        ..DvsScenarioConfig::default()
    };
    let scenario = DvsScenario::prepare(cfg)?;

    // Paper setting for neuromorphic experiments: V_th = 1.0, T = 80
    // (T scaled to 32 for the 32×32 synthetic sensor).
    let snn_cfg = SnnConfig {
        threshold: 1.0,
        time_steps: 32,
        leak: 0.9,
    };
    let level = ApproximationLevel::new(0.1).expect("valid level");

    let attacks = [
        EventAttackKind::None,
        EventAttackKind::Sparse(SparseAttack::new(SparseAttackConfig::default())),
        EventAttackKind::Frame(FrameAttack::new(FrameAttackConfig {
            thickness: 2,
            ..FrameAttackConfig::default()
        })),
    ];
    let aqf = AqfConfig {
        quantization_step: 0.015,
        ..AqfConfig::default()
    };

    println!("\n=== accuracy [%] on synthetic DVS gestures ===");
    println!(
        "{:<10} {:>10} {:>10} {:>14} {:>14}",
        "attack", "AccSNN", "AxSNN", "AccSNN+AQF", "AxSNN+AQF"
    );
    for attack in attacks {
        let mut row = vec![];
        for (approx, use_aqf) in [(false, false), (true, false), (false, true), (true, true)] {
            let mut victim = if approx {
                scenario.ax_snn(snn_cfg, level)?
            } else {
                scenario.acc_snn(snn_cfg)?
            };
            let mut surrogate = scenario.acc_snn(SnnConfig {
                threshold: 0.75,
                time_steps: 24,
                leak: 0.9,
            })?;
            let outcome = evaluate_event_attack_via(
                &mut victim,
                &mut surrogate,
                attack,
                &scenario.dataset().test,
                if use_aqf { Some(&aqf) } else { None },
                pipeline,
                &mut rng,
            )?;
            row.push(outcome.adversarial_accuracy);
        }
        println!(
            "{:<10} {:>10.1} {:>10.1} {:>14.1} {:>14.1}",
            attack.name(),
            row[0],
            row[1],
            row[2],
            row[3]
        );
    }
    println!("\nExpected shape (paper Fig. 7b + Table II): Sparse/Frame collapse");
    println!("the undefended columns; the AQF columns stay near the clean row.");
    if streaming {
        let mut net = scenario.acc_snn(snn_cfg)?;
        let (sample, _) = &scenario.dataset().test[0];
        profile_stream_latency(&mut net, sample, snn_cfg.time_steps, &mut rng)?;
    } else {
        println!("(set AXSNN_STREAM=1 to route through the streaming event pipeline)");
    }
    Ok(())
}
