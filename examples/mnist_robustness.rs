//! MNIST vulnerability analysis (small-scale Figs. 1–3): accuracy of the
//! AccSNN and AxSNNs at several approximation levels under PGD and BIM
//! across perturbation budgets.
//!
//! Run with:
//! ```text
//! cargo run --release -p axsnn --example mnist_robustness
//! ```

use axsnn::attacks::gradient::{AnnGradientSource, AttackBudget, Bim, ImageAttack, Pgd};
use axsnn::core::approx::ApproximationLevel;
use axsnn::core::encoding::Encoder;
use axsnn::core::network::SnnConfig;
use axsnn::datasets::mnist::MnistConfig;
use axsnn::defense::metrics::evaluate_image_attack_parallel;
use axsnn::defense::scenario::{MnistScenario, MnistScenarioConfig};

const EPSILONS: [f32; 6] = [0.0, 0.1, 0.3, 0.5, 0.7, 0.9];
const LEVELS: [f32; 4] = [0.0, 0.01, 0.1, 1.0];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = MnistScenarioConfig::default();
    cfg.mnist = MnistConfig {
        size: 16,
        train_per_class: 30,
        test_per_class: 5,
        ..cfg.mnist
    };
    println!("preparing scenario (train ANN on synthetic MNIST)…");
    let scenario = MnistScenario::prepare(cfg)?;
    let snn_cfg = SnnConfig {
        threshold: 0.25,
        time_steps: 32,
        leak: 0.9,
    };

    for attack_name in ["PGD", "BIM"] {
        println!("\n=== {attack_name} attack: accuracy [%] by approximation level ===");
        print!("{:>8}", "ε");
        for l in LEVELS {
            print!("{:>10}", format!("ax={l}"));
        }
        println!();
        for eps in EPSILONS {
            print!("{eps:>8.2}");
            for level in LEVELS {
                let net = scenario.ax_snn(
                    snn_cfg,
                    ApproximationLevel::new(level).expect("valid level"),
                )?;
                let budget = AttackBudget::for_epsilon(eps * 0.1); // ε-axis calibration, see EXPERIMENTS.md
                                                                   // Fan the per-sample attack + classification out across
                                                                   // all cores (threads = 0); seeded per sample, so the
                                                                   // numbers are identical whatever the core count.
                let make_source = || AnnGradientSource::new(scenario.adversary());
                let outcome = if attack_name == "PGD" {
                    let a = Pgd::new(budget);
                    evaluate_image_attack_parallel(
                        &net,
                        make_source,
                        &a,
                        &scenario.dataset().test,
                        Encoder::DirectCurrent,
                        7,
                        0,
                    )?
                } else {
                    let a = Bim::new(budget);
                    evaluate_image_attack_parallel(
                        &net,
                        make_source,
                        &a,
                        &scenario.dataset().test,
                        Encoder::DirectCurrent,
                        7,
                        0,
                    )?
                };
                print!("{:>10.1}", outcome.adversarial_accuracy);
            }
            println!();
        }
        let _ = Pgd::new(AttackBudget::for_epsilon(0.1)).name(); // silence lint in case of edits
    }
    println!("\nExpected shape (paper Figs. 2–3): columns degrade left→right");
    println!("(more approximation → lower accuracy) and rows degrade top→bottom");
    println!("(bigger ε → lower accuracy), with level 1.0 at chance throughout.");
    Ok(())
}
