//! Algorithm 1 in action: search `(V_th, T, precision, a_th)` for the
//! most robust AxSNN configuration under PGD (small-scale Table I).
//!
//! Run with:
//! ```text
//! cargo run --release -p axsnn --example precision_scaling_search
//! ```
//!
//! Set `AXSNN_JOURNAL=/path/to/search.jsonl` to make the search
//! crash-safe: every completed `(V_th, T)` cell is checkpointed to the
//! journal, and re-running the example with the same journal replays
//! finished cells instead of re-evaluating them — the final outcome is
//! bit-identical to an uninterrupted run.

use axsnn::core::convert::ann_to_snn;
use axsnn::core::network::SnnConfig;
use axsnn::core::precision::PrecisionScale;
use axsnn::datasets::mnist::MnistConfig;
use axsnn::defense::journal::SweepOptions;
use axsnn::defense::scenario::{MnistScenario, MnistScenarioConfig};
use axsnn::defense::search::{
    precision_scaling_search_resumable, PrecisionSearchConfig, SearchSpace, StaticAttackKind,
};
use axsnn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(3);

    println!("preparing scenario…");
    let mut cfg = MnistScenarioConfig::default();
    cfg.mnist = MnistConfig {
        size: 16,
        train_per_class: 30,
        test_per_class: 4,
        ..cfg.mnist
    };
    let scenario = MnistScenario::prepare(cfg)?;
    let calibration: Vec<Tensor> = scenario
        .dataset()
        .train
        .iter()
        .take(16)
        .map(|(x, _)| x.clone())
        .collect();

    let search_cfg = PrecisionSearchConfig {
        space: SearchSpace {
            thresholds: vec![0.5, 1.0, 1.5],
            time_steps: vec![16, 32],
            precision_scales: vec![
                PrecisionScale::Fp32,
                PrecisionScale::Fp16,
                PrecisionScale::Int8,
            ],
            // Eq. (1) thresholds are layer-scale; these multipliers span
            // mild → moderate approximation on the MLP substrate.
            approx_scales: vec![0.001, 0.005],
        },
        quality_constraint: 55.0,
        epsilon: 0.05,
        attack: StaticAttackKind::Pgd,
        stop_at_first: false,
        threads: 0,
    };
    println!(
        "running Algorithm 1 over {} configurations (PGD, ε = {}, Q = {}%)…",
        search_cfg.space.thresholds.len()
            * search_cfg.space.time_steps.len()
            * search_cfg.space.precision_scales.len()
            * search_cfg.space.approx_scales.len(),
        search_cfg.epsilon,
        search_cfg.quality_constraint
    );

    let opts = match std::env::var("AXSNN_JOURNAL") {
        Ok(path) => {
            println!("journaling completed cells to {path} (restart to resume)");
            SweepOptions::journaled(path)
        }
        Err(_) => SweepOptions::new(),
    };

    let ann = scenario.ann().clone();
    let mut trainer = move |snn_cfg: SnnConfig| ann_to_snn(&ann, snn_cfg, &calibration);
    let (outcome, report) = precision_scaling_search_resumable(
        &search_cfg,
        &mut trainer,
        scenario.adversary(),
        &scenario.dataset().test,
        &mut rng,
        &opts,
    )?;
    if let Some(f) = report.failures.first() {
        return Err(format!("cell {} failed permanently: {}", f.cell, f.message).into());
    }
    if report.replayed > 0 {
        println!(
            "resumed from journal: {} cells replayed, {} evaluated fresh",
            report.replayed, report.executed
        );
    }

    println!(
        "\n=== trace ({} configurations evaluated) ===",
        outcome.trace.len()
    );
    println!(
        "{:>6} {:>4} {:>6} {:>6} {:>8} {:>8}",
        "V_th", "T", "prec", "scale", "pruned", "R(ε) %"
    );
    for r in &outcome.trace {
        println!(
            "{:>6.2} {:>4} {:>6} {:>6.3} {:>7.1}% {:>8.1}",
            r.threshold,
            r.time_steps,
            r.precision.to_string(),
            r.approx_scale,
            100.0 * r.pruned_fraction,
            r.outcome.robustness
        );
    }
    if !outcome.skipped.is_empty() {
        println!("skipped (failed quality gate): {:?}", outcome.skipped);
    }
    match &outcome.best {
        Some(best) => println!(
            "\nbest configuration: V_th {} T {} {} scale {} → robustness {:.1}%",
            best.threshold,
            best.time_steps,
            best.precision,
            best.approx_scale,
            best.outcome.robustness
        ),
        None => println!("\nno configuration satisfied the quality constraint"),
    }
    Ok(())
}
