//! Algorithm 1 in action: search `(V_th, T, precision, a_th)` for the
//! most robust AxSNN configuration under PGD (small-scale Table I).
//!
//! Run with:
//! ```text
//! cargo run --release -p axsnn --example precision_scaling_search
//! ```
//!
//! Set `AXSNN_JOURNAL=/path/to/search.jsonl` to make the search
//! crash-safe: every completed `(V_th, T)` cell is checkpointed to the
//! journal, and re-running the example with the same journal replays
//! finished cells instead of re-evaluating them — the final outcome is
//! bit-identical to an uninterrupted run.
//!
//! Add `AXSNN_SHARD=i/n` (0-based index `i`, `n` processes) to split
//! the grid across independent processes: each shard journals its
//! contiguous slice to `{AXSNN_JOURNAL}.shard{i}-of-{n}`, and whichever
//! shard finishes last merges the shard journals into `AXSNN_JOURNAL`
//! and replays the merged journal for the complete, bit-identical
//! outcome. Run e.g.:
//!
//! ```text
//! AXSNN_JOURNAL=search.jsonl AXSNN_SHARD=0/2 cargo run --release -p axsnn --example precision_scaling_search &
//! AXSNN_JOURNAL=search.jsonl AXSNN_SHARD=1/2 cargo run --release -p axsnn --example precision_scaling_search
//! ```

use axsnn::core::convert::ann_to_snn;
use axsnn::core::network::SnnConfig;
use axsnn::core::precision::PrecisionScale;
use axsnn::datasets::mnist::MnistConfig;
use axsnn::defense::journal::{merge_journals, read_journal_header, SweepOptions, SweepReport};
use axsnn::defense::scenario::{MnistScenario, MnistScenarioConfig};
use axsnn::defense::search::{
    precision_scaling_search_resumable, PrecisionSearchConfig, SearchOutcome, SearchSpace,
    StaticAttackKind,
};
use axsnn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Parses `AXSNN_SHARD=i/n` (0-based shard index, process count).
fn parse_shard() -> Result<Option<(usize, usize)>, String> {
    let Ok(spec) = std::env::var("AXSNN_SHARD") else {
        return Ok(None);
    };
    let parsed = spec
        .split_once('/')
        .and_then(|(i, n)| Some((i.trim().parse().ok()?, n.trim().parse().ok()?)));
    match parsed {
        Some((index, count)) if count > 0 && index < count => Ok(Some((index, count))),
        _ => Err(format!(
            "AXSNN_SHARD must be i/n with 0 <= i < n, got {spec:?}"
        )),
    }
}

fn shard_journal_path(journal: &str, index: usize, count: usize) -> PathBuf {
    PathBuf::from(format!("{journal}.shard{index}-of-{count}"))
}

/// Cells in shard `index`'s contiguous slice of a `cells`-cell grid
/// (the same split [`SweepOptions::shard`] executes).
fn shard_slice_len(cells: usize, index: usize, count: usize) -> usize {
    let chunk = cells.div_ceil(count).max(1);
    cells.min((index + 1) * chunk) - cells.min(index * chunk)
}

/// Counts committed cell records in a shard journal without opening it
/// for writing — the sibling process may still be appending, so this
/// stays strictly read-only. A torn tail line simply doesn't count.
fn shard_completed(path: &std::path::Path) -> usize {
    std::fs::read_to_string(path)
        .map(|s| {
            s.lines()
                .filter(|l| l.starts_with("{\"cell\":") && l.ends_with('}'))
                .count()
        })
        .unwrap_or(0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("preparing scenario…");
    let mut cfg = MnistScenarioConfig::default();
    cfg.mnist = MnistConfig {
        size: 16,
        train_per_class: 30,
        test_per_class: 4,
        ..cfg.mnist
    };
    let scenario = MnistScenario::prepare(cfg)?;
    let calibration: Vec<Tensor> = scenario
        .dataset()
        .train
        .iter()
        .take(16)
        .map(|(x, _)| x.clone())
        .collect();

    let search_cfg = PrecisionSearchConfig {
        space: SearchSpace {
            thresholds: vec![0.5, 1.0, 1.5],
            time_steps: vec![16, 32],
            precision_scales: vec![
                PrecisionScale::Fp32,
                PrecisionScale::Fp16,
                PrecisionScale::Int8,
            ],
            // Eq. (1) thresholds are layer-scale; these multipliers span
            // mild → moderate approximation on the MLP substrate.
            approx_scales: vec![0.001, 0.005],
        },
        quality_constraint: 55.0,
        epsilon: 0.05,
        attack: StaticAttackKind::Pgd,
        stop_at_first: false,
        threads: 0,
    };
    println!(
        "running Algorithm 1 over {} configurations (PGD, ε = {}, Q = {}%)…",
        search_cfg.space.thresholds.len()
            * search_cfg.space.time_steps.len()
            * search_cfg.space.precision_scales.len()
            * search_cfg.space.approx_scales.len(),
        search_cfg.epsilon,
        search_cfg.quality_constraint
    );

    let journal = std::env::var("AXSNN_JOURNAL").ok();
    let shard = parse_shard()?;
    let opts = match (&journal, shard) {
        (Some(path), Some((index, count))) => {
            let shard_path = shard_journal_path(path, index, count);
            println!(
                "shard {index}/{count}: journaling this slice to {}",
                shard_path.display()
            );
            SweepOptions {
                journal: Some(shard_path),
                shard: Some((index, count)),
                ..SweepOptions::new()
            }
        }
        (None, Some(_)) => {
            return Err(
                "AXSNN_SHARD requires AXSNN_JOURNAL (shard journals are how the \
                        processes meet for the merge)"
                    .into(),
            )
        }
        (Some(path), None) => {
            println!("journaling completed cells to {path} (restart to resume)");
            SweepOptions::journaled(path)
        }
        (None, None) => SweepOptions::new(),
    };

    // Per-run RNG with a fixed seed: every shard process draws the same
    // seed stream, so their grids share one fingerprint and the merged
    // journal is bit-identical to an unsharded run.
    let run_search =
        |opts: &SweepOptions| -> Result<(SearchOutcome, SweepReport), Box<dyn std::error::Error>> {
            let mut rng = StdRng::seed_from_u64(3);
            let ann = scenario.ann().clone();
            let mut trainer = |snn_cfg: SnnConfig| ann_to_snn(&ann, snn_cfg, &calibration);
            let (outcome, report) = precision_scaling_search_resumable(
                &search_cfg,
                &mut trainer,
                scenario.adversary(),
                &scenario.dataset().test,
                &mut rng,
                opts,
            )?;
            if let Some(f) = report.failures.first() {
                return Err(format!("cell {} failed permanently: {}", f.cell, f.message).into());
            }
            Ok((outcome, report))
        };

    let (mut outcome, report) = run_search(&opts)?;
    if report.replayed > 0 {
        println!(
            "resumed from journal: {} cells replayed, {} evaluated fresh",
            report.replayed, report.executed
        );
    }

    if let (Some(path), Some((index, count))) = (&journal, shard) {
        let shards: Vec<PathBuf> = (0..count)
            .map(|k| shard_journal_path(path, k, count))
            .collect();
        let (fingerprint, cells) = read_journal_header(&shards[index])?;
        let pending = (0..count)
            .filter(|&k| shard_completed(&shards[k]) < shard_slice_len(cells, k, count))
            .count();
        if pending > 0 {
            println!(
                "shard {index}/{count} complete — {pending} shard slice(s) still running; \
                 the last shard to finish merges into {path}"
            );
            return Ok(());
        }
        // Last shard standing: join the slices and replay the merged
        // journal (zero cells re-executed) for the full outcome.
        let completed = merge_journals(&shards, path, fingerprint, cells)?;
        println!("merged {count} shard journals → {path} ({completed}/{cells} cells)");
        let merged_opts = SweepOptions::journaled(path);
        let (merged_outcome, merged_report) = run_search(&merged_opts)?;
        println!(
            "replayed merged journal: {} cells replayed, {} evaluated fresh",
            merged_report.replayed, merged_report.executed
        );
        outcome = merged_outcome;
    }

    println!(
        "\n=== trace ({} configurations evaluated) ===",
        outcome.trace.len()
    );
    println!(
        "{:>6} {:>4} {:>6} {:>6} {:>8} {:>8}",
        "V_th", "T", "prec", "scale", "pruned", "R(ε) %"
    );
    for r in &outcome.trace {
        println!(
            "{:>6.2} {:>4} {:>6} {:>6.3} {:>7.1}% {:>8.1}",
            r.threshold,
            r.time_steps,
            r.precision.to_string(),
            r.approx_scale,
            100.0 * r.pruned_fraction,
            r.outcome.robustness
        );
    }
    if !outcome.skipped.is_empty() {
        println!("skipped (failed quality gate): {:?}", outcome.skipped);
    }
    match &outcome.best {
        Some(best) => println!(
            "\nbest configuration: V_th {} T {} {} scale {} → robustness {:.1}%",
            best.threshold,
            best.time_steps,
            best.precision,
            best.approx_scale,
            best.outcome.robustness
        ),
        None => println!("\nno configuration satisfied the quality constraint"),
    }
    Ok(())
}
