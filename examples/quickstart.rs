//! Quickstart: train an accurate model, build an AccSNN and an AxSNN,
//! attack both with PGD, then defend the AxSNN with precision scaling.
//!
//! Run with:
//! ```text
//! cargo run --release -p axsnn --example quickstart
//! ```

use axsnn::attacks::gradient::{AnnGradientSource, AttackBudget, Pgd};
use axsnn::core::approx::ApproximationLevel;
use axsnn::core::encoding::Encoder;
use axsnn::core::network::SnnConfig;
use axsnn::core::precision::{apply_precision, PrecisionScale};
use axsnn::datasets::mnist::MnistConfig;
use axsnn::defense::metrics::{clean_image_accuracy, evaluate_image_attack};
use axsnn::defense::scenario::{MnistScenario, MnistScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);

    println!("== AxSNN quickstart ==");
    println!("1. generating synthetic MNIST and training the accurate ANN twin…");
    let mut cfg = MnistScenarioConfig::default();
    cfg.mnist = MnistConfig {
        size: 16,
        train_per_class: 30,
        test_per_class: 6,
        ..cfg.mnist
    };
    let scenario = MnistScenario::prepare(cfg)?;
    println!(
        "   ANN test accuracy: {:.1}%",
        scenario.ann_test_accuracy()?
    );

    let snn_cfg = SnnConfig {
        threshold: 1.0,
        time_steps: 32,
        leak: 0.9,
    };
    println!(
        "2. converting to an accurate SNN (V_th = {}, T = {})…",
        snn_cfg.threshold, snn_cfg.time_steps
    );
    let mut acc_snn = scenario.acc_snn(snn_cfg)?;
    let acc_clean = clean_image_accuracy(
        &mut acc_snn,
        &scenario.dataset().test,
        Encoder::DirectCurrent,
        &mut rng,
    )?;
    println!("   AccSNN clean accuracy: {acc_clean:.1}%");

    let level = ApproximationLevel::new(0.1).expect("valid level");
    println!("3. approximating (level {}) → AxSNN…", level.value());
    let mut ax_snn = scenario.ax_snn(snn_cfg, level)?;
    let ax_clean = clean_image_accuracy(
        &mut ax_snn,
        &scenario.dataset().test,
        Encoder::DirectCurrent,
        &mut rng,
    )?;
    println!("   AxSNN clean accuracy: {ax_clean:.1}%");

    println!("4. PGD attack (ε = 0.5, axis scale 0.1 → effective 0.05) on both models…");
    let pgd = Pgd::new(AttackBudget::for_epsilon(0.05));
    let mut source = AnnGradientSource::new(scenario.adversary());
    let acc_attacked = evaluate_image_attack(
        &mut acc_snn,
        &mut source,
        &pgd,
        &scenario.dataset().test,
        Encoder::DirectCurrent,
        &mut rng,
    )?;
    let ax_attacked = evaluate_image_attack(
        &mut ax_snn,
        &mut source,
        &pgd,
        &scenario.dataset().test,
        Encoder::DirectCurrent,
        &mut rng,
    )?;
    println!(
        "   AccSNN under PGD: {:.1}% (loss {:.1}%)",
        acc_attacked.adversarial_accuracy,
        acc_attacked.accuracy_loss_vs(acc_clean)
    );
    println!(
        "   AxSNN  under PGD: {:.1}% (loss {:.1}% vs AccSNN clean)",
        ax_attacked.adversarial_accuracy,
        ax_attacked.accuracy_loss_vs(acc_clean)
    );

    println!("5. defense: precision-scaled AxSNN (INT8 + mild approximation)…");
    let mut defended = scenario.ax_snn(snn_cfg, ApproximationLevel::new(0.01).expect("valid"))?;
    apply_precision(&mut defended, PrecisionScale::Int8)?;
    let defended_attacked = evaluate_image_attack(
        &mut defended,
        &mut source,
        &pgd,
        &scenario.dataset().test,
        Encoder::DirectCurrent,
        &mut rng,
    )?;
    println!(
        "   precision-scaled AxSNN under PGD: {:.1}% (loss {:.1}% vs AccSNN clean)",
        defended_attacked.adversarial_accuracy,
        defended_attacked.accuracy_loss_vs(acc_clean)
    );
    println!("done.");
    Ok(())
}
