//! End-to-end defense tests: the neuromorphic attack/defense pipeline
//! (Fig. 7b / Table II shape) and Algorithm 1 on a reduced grid.

use axsnn::attacks::neuromorphic::{
    FrameAttack, FrameAttackConfig, SparseAttack, SparseAttackConfig,
};
use axsnn::core::approx::ApproximationLevel;
use axsnn::core::convert::ann_to_snn;
use axsnn::core::network::SnnConfig;
use axsnn::core::precision::PrecisionScale;
use axsnn::datasets::dvs::DvsGestureConfig;
use axsnn::datasets::mnist::MnistConfig;
use axsnn::defense::metrics::{evaluate_event_attack, EventAttackKind};
use axsnn::defense::scenario::{
    DvsScenario, DvsScenarioConfig, MnistScenario, MnistScenarioConfig,
};
use axsnn::defense::search::{
    precision_scaling_search, PrecisionSearchConfig, SearchSpace, StaticAttackKind,
};
use axsnn::neuromorphic::aqf::AqfConfig;
use axsnn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dvs_scenario() -> DvsScenario {
    DvsScenario::prepare(DvsScenarioConfig {
        dvs: DvsGestureConfig {
            train_per_class: 6,
            test_per_class: 2,
            micro_steps: 80,
            events_per_step: 5,
            noise_events: 20,
            ..DvsGestureConfig::default()
        },
        ..DvsScenarioConfig::default()
    })
    .expect("DVS scenario must prepare")
}

#[test]
fn frame_attack_collapses_undefended_snn() {
    let s = dvs_scenario();
    let cfg = SnnConfig {
        threshold: 1.0,
        time_steps: 24,
        leak: 0.9,
    };
    let mut rng = StdRng::seed_from_u64(0);
    let mut victim = s.acc_snn(cfg).unwrap();
    let mut surrogate = s.acc_snn(cfg).unwrap();

    let clean = evaluate_event_attack(
        &mut victim,
        &mut surrogate,
        EventAttackKind::None,
        &s.dataset().test,
        None,
        &mut rng,
    )
    .unwrap();
    let framed = evaluate_event_attack(
        &mut victim,
        &mut surrogate,
        EventAttackKind::Frame(FrameAttack::new(FrameAttackConfig::default())),
        &s.dataset().test,
        None,
        &mut rng,
    )
    .unwrap();
    assert!(
        framed.adversarial_accuracy <= clean.clean_accuracy,
        "frame attack should not help accuracy: clean {} vs framed {}",
        clean.clean_accuracy,
        framed.adversarial_accuracy
    );
}

#[test]
fn aqf_defends_against_frame_attack() {
    let s = dvs_scenario();
    let cfg = SnnConfig {
        threshold: 1.0,
        time_steps: 24,
        leak: 0.9,
    };
    let mut rng = StdRng::seed_from_u64(1);
    let attack = EventAttackKind::Frame(FrameAttack::new(FrameAttackConfig::default()));
    let aqf = AqfConfig {
        quantization_step: 0.015,
        ..AqfConfig::default()
    };

    let mut undefended = s.acc_snn(cfg).unwrap();
    let mut surrogate = s.acc_snn(cfg).unwrap();
    let bare = evaluate_event_attack(
        &mut undefended,
        &mut surrogate,
        attack,
        &s.dataset().test,
        None,
        &mut rng,
    )
    .unwrap();

    let mut defended = s.acc_snn(cfg).unwrap();
    let guarded = evaluate_event_attack(
        &mut defended,
        &mut surrogate,
        attack,
        &s.dataset().test,
        Some(&aqf),
        &mut rng,
    )
    .unwrap();

    // The paper's Table II shape: AQF recovers accuracy under the frame
    // attack (boundary events are spatio-temporally anomalous and get
    // filtered).
    assert!(
        guarded.adversarial_accuracy >= bare.adversarial_accuracy,
        "AQF should not hurt under frame attack: bare {} vs AQF {}",
        bare.adversarial_accuracy,
        guarded.adversarial_accuracy
    );
}

#[test]
fn sparse_attack_runs_within_budget_on_real_snn() {
    let s = dvs_scenario();
    let cfg = SnnConfig {
        threshold: 1.0,
        time_steps: 16,
        leak: 0.9,
    };
    let mut rng = StdRng::seed_from_u64(2);
    let mut victim = s
        .ax_snn(cfg, ApproximationLevel::new(0.05).unwrap())
        .unwrap();
    let mut surrogate = s.acc_snn(cfg).unwrap();
    let sparse = EventAttackKind::Sparse(SparseAttack::new(SparseAttackConfig {
        budget_fraction: 0.1,
        events_per_iteration: 16,
        max_iterations: 10,
        ..SparseAttackConfig::default()
    }));
    let data: Vec<_> = s.dataset().test.iter().take(4).cloned().collect();
    let out =
        evaluate_event_attack(&mut victim, &mut surrogate, sparse, &data, None, &mut rng).unwrap();
    assert_eq!(out.samples, 4);
    assert!(out.adversarial_accuracy <= 100.0);
}

#[test]
fn algorithm1_reduced_grid_finds_robust_configuration() {
    let scenario = MnistScenario::prepare(MnistScenarioConfig {
        mnist: MnistConfig {
            size: 16,
            train_per_class: 20,
            test_per_class: 3,
            noise: 0.03,
            seed: 9,
        },
        seed: 9,
        ..MnistScenarioConfig::default()
    })
    .unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let calibration: Vec<Tensor> = scenario
        .dataset()
        .train
        .iter()
        .take(12)
        .map(|(x, _)| x.clone())
        .collect();
    let cfg = PrecisionSearchConfig {
        space: SearchSpace {
            thresholds: vec![1.0],
            time_steps: vec![24],
            precision_scales: vec![PrecisionScale::Int8],
            approx_scales: vec![0.5],
        },
        quality_constraint: 40.0,
        epsilon: 0.1,
        attack: StaticAttackKind::Pgd,
        stop_at_first: true,
        threads: 0,
    };
    let ann = scenario.ann().clone();
    let mut trainer = move |c: SnnConfig| ann_to_snn(&ann, c, &calibration);
    let out = precision_scaling_search(
        &cfg,
        &mut trainer,
        scenario.adversary(),
        &scenario.dataset().test,
        &mut rng,
    )
    .unwrap();
    assert!(
        !out.trace.is_empty() || !out.skipped.is_empty(),
        "search must evaluate or skip something"
    );
}
