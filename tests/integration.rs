//! Cross-crate integration tests: dataset → ANN training → conversion →
//! approximation → attacks, exercising the public API end to end.

use axsnn::attacks::gradient::{
    AnnGradientSource, AttackBudget, Bim, ImageAttack, Pgd, SnnGradientSource,
};
use axsnn::core::approx::ApproximationLevel;
use axsnn::core::encoding::Encoder;
use axsnn::core::network::SnnConfig;
use axsnn::core::precision::{apply_precision, PrecisionScale};
use axsnn::datasets::mnist::MnistConfig;
use axsnn::defense::metrics::{clean_image_accuracy, evaluate_image_attack};
use axsnn::defense::scenario::{Architecture, MnistScenario, MnistScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario() -> MnistScenario {
    let cfg = MnistScenarioConfig {
        mnist: MnistConfig {
            size: 16,
            train_per_class: 20,
            test_per_class: 4,
            noise: 0.03,
            seed: 31,
        },
        architecture: Architecture::FastMlp,
        seed: 31,
        ..MnistScenarioConfig::default()
    };
    MnistScenario::prepare(cfg).expect("scenario preparation must succeed")
}

#[test]
fn pipeline_produces_usable_snn() {
    let s = scenario();
    let ann_acc = s.ann_test_accuracy().unwrap();
    assert!(ann_acc > 50.0, "ANN accuracy {ann_acc}% too low");

    let cfg = SnnConfig {
        threshold: 1.0,
        time_steps: 32,
        leak: 0.9,
    };
    let mut snn = s.acc_snn(cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    let snn_acc = clean_image_accuracy(
        &mut snn,
        &s.dataset().test,
        Encoder::DirectCurrent,
        &mut rng,
    )
    .unwrap();
    assert!(
        snn_acc > ann_acc - 30.0,
        "conversion lost too much: ANN {ann_acc}% vs SNN {snn_acc}%"
    );
}

#[test]
fn approximation_degrades_clean_accuracy_monotonically() {
    let s = scenario();
    let cfg = SnnConfig {
        threshold: 1.0,
        time_steps: 24,
        leak: 0.9,
    };
    let mut rng = StdRng::seed_from_u64(1);
    let mut accs = Vec::new();
    for level in [0.0f32, 0.1, 1.0] {
        let mut net = s
            .ax_snn(cfg, ApproximationLevel::new(level).unwrap())
            .unwrap();
        let acc = clean_image_accuracy(
            &mut net,
            &s.dataset().test,
            Encoder::DirectCurrent,
            &mut rng,
        )
        .unwrap();
        accs.push(acc);
    }
    assert!(
        accs[0] >= accs[1] - 5.0 && accs[1] >= accs[2] - 5.0,
        "accuracy should fall with approximation level: {accs:?}"
    );
    assert!(
        accs[2] <= 30.0,
        "level 1.0 must be near chance: {}",
        accs[2]
    );
}

#[test]
fn axsnn_is_more_vulnerable_than_accsnn_under_pgd() {
    let s = scenario();
    let cfg = SnnConfig {
        threshold: 1.0,
        time_steps: 24,
        leak: 0.9,
    };
    let mut rng = StdRng::seed_from_u64(2);
    let pgd = Pgd::new(AttackBudget::for_epsilon(0.08));
    let mut source = AnnGradientSource::new(s.adversary());

    let mut acc = s.acc_snn(cfg).unwrap();
    let acc_out = evaluate_image_attack(
        &mut acc,
        &mut source,
        &pgd,
        &s.dataset().test,
        Encoder::DirectCurrent,
        &mut rng,
    )
    .unwrap();

    let mut ax = s
        .ax_snn(cfg, ApproximationLevel::new(0.1).unwrap())
        .unwrap();
    let ax_out = evaluate_image_attack(
        &mut ax,
        &mut source,
        &pgd,
        &s.dataset().test,
        Encoder::DirectCurrent,
        &mut rng,
    )
    .unwrap();

    // The paper's headline observation: approximation hurts robustness.
    assert!(
        ax_out.adversarial_accuracy <= acc_out.adversarial_accuracy + 5.0,
        "AxSNN ({}) should not beat AccSNN ({}) under attack",
        ax_out.adversarial_accuracy,
        acc_out.adversarial_accuracy
    );
}

#[test]
fn attacks_degrade_with_epsilon() {
    let s = scenario();
    let cfg = SnnConfig {
        threshold: 1.0,
        time_steps: 24,
        leak: 0.9,
    };
    let mut rng = StdRng::seed_from_u64(3);
    let mut source = AnnGradientSource::new(s.adversary());
    let mut previous = f32::INFINITY;
    for eps in [0.0f32, 0.05, 0.15] {
        let mut net = s.acc_snn(cfg).unwrap();
        let bim = Bim::new(AttackBudget::for_epsilon(eps));
        let out = evaluate_image_attack(
            &mut net,
            &mut source,
            &bim,
            &s.dataset().test,
            Encoder::DirectCurrent,
            &mut rng,
        )
        .unwrap();
        assert!(
            out.adversarial_accuracy <= previous + 10.0,
            "accuracy should fall with ε"
        );
        previous = out.adversarial_accuracy;
    }
}

#[test]
fn precision_scaling_preserves_clean_accuracy() {
    let s = scenario();
    let cfg = SnnConfig {
        threshold: 1.0,
        time_steps: 24,
        leak: 0.9,
    };
    let mut rng = StdRng::seed_from_u64(4);
    let mut baseline = s.acc_snn(cfg).unwrap();
    let base_acc = clean_image_accuracy(
        &mut baseline,
        &s.dataset().test,
        Encoder::DirectCurrent,
        &mut rng,
    )
    .unwrap();
    for scale in PrecisionScale::ALL {
        let mut net = s.acc_snn(cfg).unwrap();
        apply_precision(&mut net, scale).unwrap();
        let acc = clean_image_accuracy(
            &mut net,
            &s.dataset().test,
            Encoder::DirectCurrent,
            &mut rng,
        )
        .unwrap();
        assert!(
            acc >= base_acc - 15.0,
            "{scale} lost too much clean accuracy: {acc}% vs {base_acc}%"
        );
    }
}

#[test]
fn snn_white_box_gradients_work_as_attack_source() {
    let s = scenario();
    let cfg = SnnConfig {
        threshold: 1.0,
        time_steps: 16,
        leak: 0.9,
    };
    let mut rng = StdRng::seed_from_u64(5);
    let mut victim = s.acc_snn(cfg).unwrap();
    let (image, label) = s.dataset().test[0].clone();

    let mut crafting_copy = s.acc_snn(cfg).unwrap();
    let mut source = SnnGradientSource::new(&mut crafting_copy);
    let pgd = Pgd::new(AttackBudget {
        epsilon: 0.5,
        step_size: 0.1,
        steps: 8,
    });
    let adv = pgd.perturb(&mut source, &image, label, &mut rng).unwrap();
    assert!(adv.sub(&image).unwrap().linf_norm() <= 0.5 + 1e-5);
    // The adversarial input must still be classifiable (sanity, not
    // asserting success — surrogate gradients on tiny nets are noisy).
    let _ = victim
        .classify(&adv, Encoder::DirectCurrent, &mut rng)
        .unwrap();
}

#[test]
fn poisson_and_deterministic_encodings_agree_roughly() {
    let s = scenario();
    let cfg = SnnConfig {
        threshold: 1.0,
        time_steps: 48,
        leak: 0.9,
    };
    let mut rng = StdRng::seed_from_u64(6);
    let mut net = s.acc_snn(cfg).unwrap();
    let det = clean_image_accuracy(
        &mut net,
        &s.dataset().test,
        Encoder::Deterministic,
        &mut rng,
    )
    .unwrap();
    let dc = clean_image_accuracy(
        &mut net,
        &s.dataset().test,
        Encoder::DirectCurrent,
        &mut rng,
    )
    .unwrap();
    assert!(
        (det - dc).abs() <= 40.0,
        "encodings disagree wildly: deterministic {det}% vs direct {dc}%"
    );
}
