//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Implements wall-clock benchmarking with the same surface API as the
//! real crate — [`Criterion::bench_function`], benchmark groups with
//! [`BenchmarkGroup::bench_with_input`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — without statistical
//! analysis, plotting, or HTML reports. Each benchmark warms up briefly,
//! then measures batches until a time budget is reached and reports the
//! mean time per iteration to stdout.
//!
//! Environment knobs:
//!
//! * `CRITERION_SHIM_MEASURE_MS` — measurement budget per benchmark in
//!   milliseconds (default 200),
//! * `CRITERION_SHIM_JSON` — when set, the final summary is also written
//!   as a JSON array of `{name, mean_ns, iterations}` records to the
//!   given path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark identifier (`group/param` for grouped benches).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Total iterations measured.
    pub iterations: u64,
}

fn measure_budget() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200u64);
    Duration::from_millis(ms)
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    result: Option<(f64, u64)>,
}

impl Bencher {
    /// Times `routine`, storing the mean ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let budget = measure_budget();
        // Warmup: let caches/allocator settle and estimate cost.
        let warmup_end = Instant::now() + budget / 10;
        let mut warmup_iters = 0u64;
        while Instant::now() < warmup_end || warmup_iters == 0 {
            black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < budget {
            let start = Instant::now();
            black_box(routine());
            total += start.elapsed();
            iters += 1;
            if iters >= 10_000_000 {
                break;
            }
        }
        self.result = Some((total.as_nanos() as f64 / iters.max(1) as f64, iters));
    }
}

/// Benchmark registry and runner (the shim's `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        self.record(name.to_string(), &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn record(&mut self, name: String, b: &Bencher) {
        let (mean_ns, iterations) = b.result.unwrap_or((f64::NAN, 0));
        println!(
            "{name:<50} time: {:>12.1} ns/iter  ({iterations} iters)",
            mean_ns
        );
        self.results.push(Measurement {
            name,
            mean_ns,
            iterations,
        });
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    /// Prints the final summary and honours `CRITERION_SHIM_JSON`.
    pub fn final_summary(&self) {
        println!("\n{} benchmarks measured", self.results.len());
        if let Ok(path) = std::env::var("CRITERION_SHIM_JSON") {
            let mut out = String::from("[\n");
            for (i, m) in self.results.iter().enumerate() {
                let sep = if i + 1 == self.results.len() { "" } else { "," };
                out.push_str(&format!(
                    "  {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}}}{sep}\n",
                    m.name.replace('"', "'"),
                    m.mean_ns,
                    m.iterations
                ));
            }
            out.push_str("]\n");
            if let Err(e) = std::fs::write(&path, out) {
                eprintln!("criterion shim: cannot write {path}: {e}");
            }
        }
    }
}

/// Identifier for one parameterized benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function-plus-parameter identifier.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        let name = format!("{}/{}", self.name, id);
        self.criterion.record(name, &b);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        let name = format!("{}/{}", self.name, id.id);
        self.criterion.record(name, &b);
        self
    }

    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Finishes the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_positive_time() {
        std::env::set_var("CRITERION_SHIM_MEASURE_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(c.measurements().len(), 1);
        assert!(c.measurements()[0].mean_ns > 0.0);
        assert!(c.measurements()[0].iterations > 0);
    }

    #[test]
    fn group_names_compose() {
        std::env::set_var("CRITERION_SHIM_MEASURE_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert_eq!(c.measurements()[0].name, "grp/3");
    }
}
