//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Provides randomized property testing with the same surface syntax as
//! the real crate — the [`proptest!`] macro, range and tuple strategies,
//! [`collection::vec`], [`bool::ANY`], `prop_map`, and the
//! [`prop_assert!`]/[`prop_assert_eq!`] macros — minus shrinking and
//! persistence. Each test draws `ProptestConfig::cases` random inputs
//! from a generator seeded by the test's module path, so failures are
//! reproducible run-to-run; the `PROPTEST_CASES` environment variable
//! overrides the case count.
//!
//! # Example
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     // (#[test] goes here in real test code)
//!     fn addition_commutes(a in -100i32..100, b in -100i32..100) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator from a test identifier (FNV-1a of the name), so
    /// every test has its own reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors proptest's `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
float_strategies!(f32, f64);

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}
int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform boolean strategy (mirrors `proptest::bool::ANY`).
    pub const ANY: Any = Any;
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specifications accepted by [`vec`]: a fixed `usize` or a
    /// half-open `Range<usize>`.
    pub trait IntoLenRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLenRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLenRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length comes from `len` (fixed or a range).
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Per-test configuration (mirrors `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Resolves the effective case count: the `PROPTEST_CASES` environment
/// variable overrides the configured value.
pub fn resolved_cases(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured)
}

/// Asserts a condition inside a property (panics with the case input on
/// failure; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = $crate::resolved_cases(config.cases);
            let mut rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for _ in 0..cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in -3.0f32..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        /// Tuple + prop_map compose.
        #[test]
        fn tuple_map_composes(
            v in super::collection::vec((0u16..4, super::bool::ANY).prop_map(|(a, b)| {
                if b { a + 10 } else { a }
            }), 0..8),
        ) {
            prop_assert!(v.len() < 8);
            for e in v {
                prop_assert!(e < 4 || (10..14).contains(&e));
            }
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
