//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this in-tree
//! crate provides the pieces the AxSNN stack relies on: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64), the [`rngs::mock::StepRng`]
//! counter generator, and [`seq::SliceRandom::shuffle`].
//!
//! It is **not** a drop-in replacement for the real crate: distribution
//! quality is "good enough for seeded simulation", the API surface is
//! intentionally tiny, and streams differ from upstream `rand`. Every
//! consumer in this workspace seeds explicitly, so determinism — not
//! stream compatibility — is the contract.
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f32 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.gen_range(0usize..10);
//! assert!(k < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (high word of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values samplable uniformly from an [`RngCore`] (the shim's stand-in
/// for `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1) with full f32 mantissa coverage.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges samplable uniformly (the shim's stand-in for
/// `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_range_impls!(f32, f64);

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++ with
    /// SplitMix64 seed expansion. Fast, passes the statistical checks the
    /// simulation needs, and fully deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Mock generators for tests.
    pub mod mock {
        use super::super::RngCore;

        /// A deterministic counter generator: yields `initial`,
        /// `initial + increment`, … (wrapping).
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a counter starting at `initial` advancing by
            /// `increment` per draw.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let v = self.value;
                self.value = self.value.wrapping_add(self.increment);
                v
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f32>(), b.gen::<f32>());
        }
        let mut c = StdRng::seed_from_u64(43);
        let differs = (0..10).any(|_| a.gen::<f32>() != c.gen::<f32>());
        assert!(differs, "different seeds must produce different streams");
    }

    #[test]
    fn gen_f32_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&x));
            let k = rng.gen_range(3usize..17);
            assert!((3..17).contains(&k));
            let i = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn step_rng_counts() {
        let mut rng = StepRng::new(5, 3);
        use super::RngCore;
        assert_eq!(rng.next_u64(), 5);
        assert_eq!(rng.next_u64(), 8);
        assert_eq!(rng.next_u64(), 11);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut data: Vec<u32> = (0..50).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(data, sorted, "50 elements virtually never stay sorted");
    }
}
