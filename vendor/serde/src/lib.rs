//! Offline shim for the subset of `serde` this workspace needs.
//!
//! The AxSNN crates derive `Serialize`/`Deserialize` on their model and
//! config types to declare them snapshot-friendly, but no code path in
//! the workspace performs actual (de)serialization at runtime — the
//! [`axsnn-core` `io` module] snapshots models into plain Rust structs.
//! With no network access to crates.io, this shim keeps those derives
//! compiling: the traits are empty markers with blanket implementations,
//! and the derive macros (re-exported from the in-tree `serde_derive`)
//! emit nothing.
//!
//! If a future PR adds real serialization (e.g. JSON export of trained
//! models), replace this shim with the real crate or implement the data
//! model here.
//!
//! [`axsnn-core` `io` module]: ../axsnn_core/io/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    #[serde(tag = "kind", rename_all = "snake_case")]
    enum Sample {
        #[allow(dead_code)]
        A { x: u32 },
        #[allow(dead_code)]
        B,
    }

    fn assert_serializable<T: Serialize>() {}
    fn assert_deserializable<T: for<'de> Deserialize<'de>>() {}

    #[test]
    fn derives_and_bounds_compile() {
        assert_serializable::<Sample>();
        assert_deserializable::<Sample>();
    }
}
