//! Offline shim for `serde_derive`.
//!
//! The workspace's `serde` shim implements [`Serialize`]/[`Deserialize`]
//! as blanket marker traits, so these derive macros have nothing to
//! generate: they validate nothing, emit nothing, and exist solely so
//! `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` attributes in
//! the model code compile unchanged when real serde is unavailable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::TokenStream;

/// No-op `Serialize` derive: the shim's trait is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: the shim's trait is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
